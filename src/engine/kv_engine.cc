#include "engine/kv_engine.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>

#include "engine/record.h"
#include "obs/attribution.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace checkin {

namespace {

/** Trace lane for checkpoint events (Cat::Engine). */
constexpr std::uint32_t kCkptLane = 1;

/** Sum of the device counters behind CheckpointStat::cowCommands. */
std::uint64_t
cowCommandCount(const StatRegistry &ds)
{
    return ds.get("ssd.cmd.cowSingle") + ds.get("ssd.cmd.cowMulti") +
           ds.get("ssd.cmd.checkpointRemap");
}

} // namespace

KvEngine::KvEngine(SimContext &ctx, Ssd &ssd, const EngineConfig &cfg)
    : eq_(ctx.events()),
      ssd_(ssd),
      cfg_(cfg),
      layout_(DiskLayout::compute(cfg, ssd.capacitySectors(),
                                  ssd.ftl().sectorsPerUnit())),
      keymap_(cfg.recordCount),
      hostCache_(cfg.hostCacheBytes),
      journal_(ctx, ssd, layout_, cfg_, stats_),
      strategy_(CheckpointStrategy::create(ssd, layout_, cfg_,
                                           stats_)),
      policy_(CheckpointPolicy::create(cfg_))
{
    journal_.setPressureCallback([this] {
        requestCheckpoint(obs::CkptTrigger::SpacePressure);
    });
    obs::nameLane(obs::Cat::Engine, kCkptLane, "checkpoint");
    telem_ = ctx.telemetry();
    if (telem_ != nullptr && telem_->enabled()) {
        telem_->addGauge("engine.deferredOps", [this] {
            return std::uint64_t(deferred_.size());
        });
        telem_->addGauge("engine.keymapSize", [this] {
            return std::uint64_t(keymap_.size());
        });
        telem_->addGauge("engine.ckptInProgress", [this] {
            return std::uint64_t(ckptInProgress_ ? 1 : 0);
        });
        telem_->addGauge("journal.fillRate", [this] {
            return std::uint64_t(policy_->fillRateBytesPerSec());
        });
        telem_->addCounter("engine.checkpoints", [this] {
            return stats_.get("engine.checkpoints");
        });
    }
}

void
KvEngine::load(
    const std::function<std::uint32_t(std::uint64_t)> &size_of)
{
    // Populate the data area with version-1 values.
    for (std::uint64_t key = 0; key < cfg_.recordCount; ++key) {
        const std::uint32_t bytes = size_of(key);
        const auto chunks =
            std::uint32_t(divCeil(bytes, kChunkBytes));
        const auto nsect =
            std::uint32_t(divCeil(chunks, kChunksPerSector));
        std::vector<SectorData> payload(nsect);
        for (std::uint32_t c = 0; c < chunks; ++c) {
            payload[c / kChunksPerSector]
                .chunks[c % kChunksPerSector] =
                dataChunkToken(key, 1, c);
        }
        ssd_.submitSync(Command::write(layout_.targetLba(key),
                                       std::move(payload),
                                       IoCause::Query, 1));
        KeyState &st = keymap_[key];
        st.version = 1;
        st.assignedVersion = 1;
        st.storedChunks = chunks;
        st.inJournal = false;
        st.catalogVersion = 1;
        st.catalogChunks = chunks;
    }
    // Persist the full catalog.
    const auto g = std::uint32_t(
        std::max<std::uint32_t>(1, ssd_.ftl().sectorsPerUnit()));
    for (Lba base = layout_.catalogStart;
         base < layout_.catalogStart + layout_.catalogSectors;
         base += g) {
        std::vector<SectorData> payload(g);
        for (std::uint32_t s = 0; s < g; ++s) {
            for (std::uint32_t c = 0; c < kChunksPerSector; ++c) {
                const std::uint64_t k =
                    (base - layout_.catalogStart + s) *
                        kCatalogEntriesPerSector +
                    c;
                if (k < cfg_.recordCount) {
                    payload[s].chunks[c] = catalogToken(
                        k, keymap_[k].catalogVersion,
                        keymap_[k].catalogChunks);
                }
            }
        }
        ssd_.submitSync(Command::write(base, std::move(payload),
                                       IoCause::Metadata));
    }
    stats_.add("engine.loadedKeys", cfg_.recordCount);
}

void
KvEngine::start()
{
    if (policy_->timerPeriod() > 0)
        eq_.scheduleAfter(policy_->timerPeriod(),
                          [this] { onCheckpointTimer(); });
}

void
KvEngine::onCheckpointTimer()
{
    const PolicyDecision d = policy_->onTimer(policySignals());
    if (d.checkpoint)
        requestCheckpoint(d.trigger);
    if (policy_->timerPeriod() > 0)
        eq_.scheduleAfter(policy_->timerPeriod(),
                          [this] { onCheckpointTimer(); });
}

PolicySignals
KvEngine::policySignals() const
{
    PolicySignals sig;
    sig.now = eq_.now();
    sig.journalBytes = journal_.activeJournalBytes();
    sig.journalCapacityBytes = cfg_.journalHalfBytes;
    sig.checkpointInProgress = ckptInProgress_;
    sig.checkpointStallTicks =
        obs::attrLiveStageTicks(obs::Stage::CheckpointStall);
    return sig;
}

void
KvEngine::noteJournalAppend()
{
    policy_->noteAppend(eq_.now(), journal_.activeJournalBytes());
    if (ckptInProgress_)
        return;
    const PolicyDecision d = policy_->onAppend(policySignals());
    if (d.checkpoint)
        requestCheckpoint(d.trigger);
}

bool
KvEngine::maybeDefer(std::function<void()> fn)
{
    if (cfg_.lockQueriesDuringCheckpoint && ckptInProgress_) {
        deferred_.push_back(std::move(fn));
        return true;
    }
    return false;
}

void
KvEngine::drainDeferred()
{
    while (!deferred_.empty()) {
        eq_.scheduleAfter(0, std::move(deferred_.front()));
        deferred_.pop_front();
    }
}

void
KvEngine::get(std::uint64_t key, QueryCb cb)
{
    const obs::OpToken op = obs::attrCurrentOp();
    auto task = [this, key, op, cb = std::move(cb)]() mutable {
        // A deferred task ran later than scheduled; the gap was spent
        // behind the checkpoint lock (monotone no-op otherwise).
        obs::attrMark(op, obs::Stage::CheckpointStall, eq_.now());
        obs::AttrOpScope attr_scope(op);
        doGet(key, std::move(cb));
    };
    if (maybeDefer(task))
        return;
    obs::attrMark(op, obs::Stage::HostCpu,
                  eq_.now() + cfg_.hostCpuPerQuery);
    eq_.scheduleAfter(cfg_.hostCpuPerQuery, std::move(task));
}

void
KvEngine::update(std::uint64_t key, std::uint32_t value_bytes,
                 QueryCb cb)
{
    const obs::OpToken op = obs::attrCurrentOp();
    auto task = [this, key, value_bytes, op,
                 cb = std::move(cb)]() mutable {
        obs::attrMark(op, obs::Stage::CheckpointStall, eq_.now());
        obs::AttrOpScope attr_scope(op);
        doUpdate(key, value_bytes, std::move(cb));
    };
    if (maybeDefer(task))
        return;
    obs::attrMark(op, obs::Stage::HostCpu,
                  eq_.now() + cfg_.hostCpuPerQuery);
    eq_.scheduleAfter(cfg_.hostCpuPerQuery, std::move(task));
}

void
KvEngine::readModifyWrite(std::uint64_t key,
                          std::uint32_t value_bytes, QueryCb cb)
{
    const obs::OpToken op = obs::attrCurrentOp();
    get(key, [this, key, value_bytes, op,
              cb = std::move(cb)](const QueryResult &r1) mutable {
        const bool first_during = r1.duringCheckpoint;
        // The continuation runs from a completion callback where the
        // ambient current op is gone; re-scope it so the update leg
        // attributes to the same op.
        obs::AttrOpScope attr_scope(op);
        update(key, value_bytes,
               [cb = std::move(cb),
                first_during](const QueryResult &r2) {
                   QueryResult res = r2;
                   res.duringCheckpoint |= first_during;
                   cb(res);
               });
    });
}

void
KvEngine::erase(std::uint64_t key, QueryCb cb)
{
    const obs::OpToken op = obs::attrCurrentOp();
    auto task = [this, key, op, cb = std::move(cb)]() mutable {
        obs::attrMark(op, obs::Stage::CheckpointStall, eq_.now());
        obs::AttrOpScope attr_scope(op);
        doErase(key, std::move(cb));
    };
    if (maybeDefer(task))
        return;
    obs::attrMark(op, obs::Stage::HostCpu,
                  eq_.now() + cfg_.hostCpuPerQuery);
    eq_.scheduleAfter(cfg_.hostCpuPerQuery, std::move(task));
}

void
KvEngine::scan(std::uint64_t start_key, std::uint32_t count,
               QueryCb cb)
{
    const obs::OpToken op = obs::attrCurrentOp();
    auto task = [this, start_key, count, op,
                 cb = std::move(cb)]() mutable {
        obs::attrMark(op, obs::Stage::CheckpointStall, eq_.now());
        obs::AttrOpScope attr_scope(op);
        doScan(start_key, count, std::move(cb));
    };
    if (maybeDefer(task))
        return;
    obs::attrMark(op, obs::Stage::HostCpu,
                  eq_.now() + cfg_.hostCpuPerQuery);
    eq_.scheduleAfter(cfg_.hostCpuPerQuery, std::move(task));
}

void
KvEngine::doGet(std::uint64_t key, QueryCb cb)
{
    assert(key < cfg_.recordCount);
    stats_.add("engine.gets");
    const KeyState st = keymap_[key];
    const bool ckpt_at_submit = ckptInProgress_;
    if (st.version == 0 || st.storedChunks == 0) {
        // Never written, or deleted (tombstone / trimmed slot).
        stats_.add("engine.getMisses");
        eq_.scheduleAfter(0, [this, cb = std::move(cb),
                              ckpt_at_submit] {
            cb(QueryResult{eq_.now(), ckpt_at_submit, false});
        });
        return;
    }
    verifyKeyContent(key, st);
    if (hostCache_.lookup(key, st.version)) {
        // Served from the block management engine's memory.
        stats_.add("engine.hostCacheHits");
        eq_.scheduleAfter(0, [this, cb = std::move(cb),
                              ckpt_at_submit] {
            cb(QueryResult{eq_.now(),
                           ckpt_at_submit || ckptInProgress_, true});
        });
        return;
    }
    Lba lba;
    std::uint32_t shift = 0;
    if (st.inJournal) {
        lba = layout_.journalChunkLba(st.half, st.journalChunk);
        shift = std::uint32_t(st.journalChunk % kChunksPerSector);
        stats_.add("engine.getsFromJournal");
    } else {
        lba = layout_.targetLba(key);
    }
    const auto nsect = std::uint32_t(
        divCeil(shift + st.storedChunks, kChunksPerSector));
    hostCache_.insert(key, st.version,
                      st.storedChunks * kChunkBytes);
    ssd_.submit(Command::read(lba, nsect, IoCause::Query),
                [this, cb = std::move(cb),
                 ckpt_at_submit](const CmdResult &r) {
                    cb(QueryResult{
                        r.require(),
                        ckpt_at_submit || ckptInProgress_, true});
                });
}

void
KvEngine::doUpdate(std::uint64_t key, std::uint32_t value_bytes,
                   QueryCb cb)
{
    assert(key < cfg_.recordCount);
    assert(value_bytes > 0 && value_bytes <= cfg_.maxValueBytes);
    const std::uint32_t version = ++keymap_[key].assignedVersion;
    const bool ckpt_at_submit = ckptInProgress_;
    journal_.append(
        key, version, value_bytes,
        [this, key, cb = std::move(cb),
         ckpt_at_submit](const JmtEntry &e, Tick done) {
            KeyState &st = keymap_[key];
            if (e.version > st.version) {
                st.version = e.version;
                st.storedChunks = e.chunks;
                st.inJournal = true;
                st.half = e.half;
                st.journalChunk = e.chunkOff;
            }
            stats_.add("engine.updates");
            stats_.add("engine.updateBytes", e.payloadBytes);
            hostCache_.insert(key, e.version, e.chunks * kChunkBytes);
            noteJournalAppend();
            cb(QueryResult{done,
                           ckpt_at_submit || ckptInProgress_, true});
        });
}

void
KvEngine::updateBatch(std::vector<BatchOp> ops, QueryCb cb)
{
    const obs::OpToken op = obs::attrCurrentOp();
    auto task = [this, ops = std::move(ops), op,
                 cb = std::move(cb)]() mutable {
        assert(!ops.empty());
        obs::attrMark(op, obs::Stage::CheckpointStall, eq_.now());
        obs::AttrOpScope attr_scope(op);
        const bool ckpt_at_submit = ckptInProgress_;
        struct TxnState
        {
            std::size_t outstanding;
            Tick last = 0;
            QueryCb cb;
        };
        auto txn = std::make_shared<TxnState>();
        txn->outstanding = ops.size();
        txn->cb = std::move(cb);
        std::vector<JournalManager::BatchRecord> records;
        records.reserve(ops.size());
        for (const BatchOp &op : ops) {
            assert(op.key < cfg_.recordCount);
            const std::uint32_t version =
                ++keymap_[op.key].assignedVersion;
            records.push_back(JournalManager::BatchRecord{
                op.key, version, op.valueBytes,
                [this, txn, ckpt_at_submit](const JmtEntry &e,
                                            Tick done) {
                    KeyState &st = keymap_[e.key];
                    if (e.version > st.version) {
                        st.version = e.version;
                        st.storedChunks =
                            e.payloadBytes == 0 ? 0 : e.chunks;
                        st.inJournal = true;
                        st.half = e.half;
                        st.journalChunk = e.chunkOff;
                        if (e.payloadBytes == 0) {
                            hostCache_.erase(e.key);
                        } else {
                            hostCache_.insert(e.key, e.version,
                                              e.chunks * kChunkBytes);
                        }
                    }
                    txn->last = std::max(txn->last, done);
                    if (--txn->outstanding == 0) {
                        stats_.add("engine.batchCommits");
                        noteJournalAppend();
                        txn->cb(QueryResult{
                            txn->last,
                            ckpt_at_submit || ckptInProgress_,
                            true});
                    }
                }});
        }
        journal_.appendBatch(std::move(records));
    };
    if (maybeDefer(task))
        return;
    obs::attrMark(op, obs::Stage::HostCpu,
                  eq_.now() + cfg_.hostCpuPerQuery);
    eq_.scheduleAfter(cfg_.hostCpuPerQuery, std::move(task));
}

void
KvEngine::doErase(std::uint64_t key, QueryCb cb)
{
    assert(key < cfg_.recordCount);
    const std::uint32_t version = ++keymap_[key].assignedVersion;
    const bool ckpt_at_submit = ckptInProgress_;
    journal_.append(
        key, version, /*value_bytes=*/0,
        [this, key, cb = std::move(cb),
         ckpt_at_submit](const JmtEntry &e, Tick done) {
            KeyState &st = keymap_[key];
            if (e.version > st.version) {
                st.version = e.version;
                st.storedChunks = 0;
                st.inJournal = true;
                st.half = e.half;
                st.journalChunk = e.chunkOff;
            }
            stats_.add("engine.deletes");
            hostCache_.erase(key);
            noteJournalAppend();
            cb(QueryResult{done,
                           ckpt_at_submit || ckptInProgress_, true});
        });
}

void
KvEngine::doScan(std::uint64_t start_key, std::uint32_t count,
                 QueryCb cb)
{
    assert(start_key < cfg_.recordCount);
    stats_.add("engine.scans");
    const std::uint64_t end = std::min<std::uint64_t>(
        cfg_.recordCount, start_key + count);
    const bool ckpt_at_submit = ckptInProgress_;

    struct Job
    {
        std::size_t outstanding = 0;
        Tick last = 0;
        std::uint32_t scanned = 0;
        bool launched = false;
        QueryCb cb;
    };
    auto job = std::make_shared<Job>();
    job->cb = std::move(cb);
    auto complete = [this, job, ckpt_at_submit](const CmdResult &r) {
        job->last = std::max(job->last, r.require());
        if (--job->outstanding == 0 && job->launched) {
            job->cb(QueryResult{job->last,
                                ckpt_at_submit || ckptInProgress_,
                                job->scanned > 0, job->scanned});
        }
    };

    // Journal-resident keys are fetched individually; the data-area
    // residents coalesce into one sequential slot-range read.
    std::uint64_t data_first = kInvalidAddr;
    std::uint64_t data_last = 0;
    for (std::uint64_t key = start_key; key < end; ++key) {
        const KeyState st = keymap_[key];
        if (st.version == 0 || st.storedChunks == 0)
            continue;
        verifyKeyContent(key, st);
        ++job->scanned;
        if (st.inJournal) {
            const Lba lba =
                layout_.journalChunkLba(st.half, st.journalChunk);
            const auto shift = std::uint32_t(st.journalChunk %
                                             kChunksPerSector);
            const auto nsect = std::uint32_t(divCeil(
                shift + st.storedChunks, kChunksPerSector));
            ++job->outstanding;
            ssd_.submit(Command::read(lba, nsect, IoCause::Query),
                        complete);
        } else {
            data_first = std::min(data_first, key);
            data_last = std::max(data_last, key);
        }
    }
    if (data_first != kInvalidAddr) {
        const Lba lba = layout_.targetLba(data_first);
        const std::uint64_t nsect =
            (data_last - data_first + 1) * layout_.slotSectors;
        ++job->outstanding;
        stats_.add("engine.scanSequentialSectors", nsect);
        ssd_.submit(Command::read(lba, nsect, IoCause::Query),
                    complete);
    }
    job->launched = true;
    if (job->outstanding == 0) {
        // Nothing live in range: complete asynchronously.
        eq_.scheduleAfter(0, [this, job, ckpt_at_submit] {
            job->cb(QueryResult{eq_.now(),
                                ckpt_at_submit || ckptInProgress_,
                                false, 0});
        });
    }
}

void
KvEngine::requestCheckpoint(obs::CkptTrigger reason)
{
    // A safety-bound trip is an anomaly even when the request
    // coalesces into a checkpoint already in flight.
    if (telem_ != nullptr && reason == obs::CkptTrigger::Safety) {
        telem_->noteEvent(obs::TelemetryEvent::SafetyTrip,
                          eq_.now(),
                          journal_.activeJournalBytes());
    }
    if (ckptInProgress_) {
        pendingCkptRequest_ = true;
        return;
    }
    if (journal_.jmtSize() == 0)
        return;
    if (!journal_.otherHalfFree()) {
        pendingCkptRequest_ = true;
        return;
    }
    // The request that actually starts the checkpoint names it;
    // coalesced earlier requests re-fire as Backlog.
    ckptRec_.trigger = reason;
    startCheckpoint();
}

void
KvEngine::startCheckpoint()
{
    ckptInProgress_ = true;
    ckptStart_ = eq_.now();
    policy_->onCheckpointStart(ckptStart_);
    if (telem_ != nullptr)
        telem_->noteCheckpointStart(ckptStart_);
    stats_.add("engine.checkpoints");
    obs::instant(obs::Cat::Engine, kCkptLane, "ckpt.start",
                 ckptStart_, {{"jmtEntries", journal_.jmtSize()}});
    // Wait for any in-flight group commit: its records belong to the
    // half being checkpointed and must be in the JMT snapshot.
    journal_.quiesce([this] {
        stats_.add("engine.ckptLogsSeen",
                   journal_.logsInActiveHalf());
        auto entries = std::make_shared<std::vector<JmtEntry>>(
            journal_.beginCheckpoint());
        stats_.add("engine.ckptLatestEntries", entries->size());
        if (obs::attributionOn()) {
            const obs::CkptTrigger reason = ckptRec_.trigger;
            ckptRec_ = obs::CheckpointStat{};
            ckptRec_.trigger = reason;
            ckptRec_.seq = ckptSeq_;
            ckptRec_.startTick = ckptStart_;
            for (const JmtEntry &e : *entries) {
                ++ckptRec_.entries;
                if (e.payloadBytes == 0)
                    ++ckptRec_.tombstones;
                switch (e.type) {
                  case LogType::Raw: ++ckptRec_.rawRecords; break;
                  case LogType::Full: ++ckptRec_.fullRecords; break;
                  case LogType::Partial:
                    ++ckptRec_.partialRecords;
                    break;
                  case LogType::Merged:
                    ++ckptRec_.mergedRecords;
                    break;
                }
            }
            // Device-counter baselines; finishCheckpoint() turns
            // them into per-checkpoint deltas.
            const StatRegistry &ds = ssd_.stats();
            ckptRec_.cowCommands = cowCommandCount(ds);
            ckptRec_.remappedPairs = ds.get("isce.remappedPairs");
            ckptRec_.remappedUnits = ds.get("isce.remappedUnits");
            ckptRec_.copiedPairs = ds.get("isce.copiedPairs");
            ckptRec_.copiedChunks = ds.get("isce.copiedChunks");
            ckptRec_.bufferedSmallRecords =
                ds.get("isce.bufferedSmallRecords");
        }
        const std::uint8_t half = journal_.activeHalf() ^ 1;
        // Tombstones do not move data; they trim their targets.
        auto values = std::make_shared<std::vector<JmtEntry>>();
        auto tombs = std::make_shared<std::vector<JmtEntry>>();
        for (const JmtEntry &e : *entries) {
            (e.payloadBytes == 0 ? *tombs : *values).push_back(e);
        }
        strategy_->run(*values,
                       [this, entries, tombs, half](Tick t) {
            trimTombstones(*tombs, [this, entries, half,
                                    t](Tick t2) {
                onStrategyDone(*entries, half, std::max(t, t2));
            });
        });
    });
}

void
KvEngine::trimTombstones(const std::vector<JmtEntry> &tombs,
                         std::function<void(Tick)> cb)
{
    if (tombs.empty()) {
        cb(eq_.now());
        return;
    }
    struct Job
    {
        std::size_t outstanding;
        Tick last = 0;
        std::function<void(Tick)> cb;
    };
    auto job = std::make_shared<Job>();
    job->outstanding = tombs.size();
    job->cb = std::move(cb);
    for (const JmtEntry &e : tombs) {
        stats_.add("engine.ckptTombstoneTrims");
        ssd_.submit(Command::trim(layout_.targetLba(e.key),
                                  layout_.slotSectors),
                    [job](const CmdResult &r) {
                        job->last = std::max(job->last, r.require());
                        if (--job->outstanding == 0)
                            job->cb(job->last);
                    });
    }
}

void
KvEngine::onStrategyDone(const std::vector<JmtEntry> &entries,
                         std::uint8_t half, Tick t)
{
    (void)t;
    for (const JmtEntry &e : entries) {
        KeyState &st = keymap_[e.key];
        // The data area now holds this version; reads of keys not
        // updated since switch back to the data area.
        if (st.inJournal && st.half == half &&
            st.version == e.version) {
            st.inJournal = false;
        }
        st.catalogVersion = e.version;
        st.catalogChunks = e.payloadBytes == 0 ? 0 : e.chunks;
    }
    // Phase accounting (paper Fig 4): data movement vs metadata vs
    // log deletion.
    ckptDataDone_ = std::max(eq_.now(), ckptStart_);
    stats_.add("engine.ckptDataTicks", ckptDataDone_ - ckptStart_);
    obs::span(obs::Cat::Engine, kCkptLane, "ckpt.data", ckptStart_,
              ckptDataDone_, {{"entries", entries.size()}});
    writeCatalog(entries, [this, half](Tick t2) {
        ckptMetaDone_ = std::max(t2, ckptDataDone_);
        stats_.add("engine.ckptMetaTicks",
                   ckptMetaDone_ - ckptDataDone_);
        obs::span(obs::Cat::Engine, kCkptLane, "ckpt.meta",
                  ckptDataDone_, ckptMetaDone_);
        deleteLogs(half, [this, half](Tick t3) {
            stats_.add("engine.ckptDeleteTicks",
                       t3 > ckptMetaDone_ ? t3 - ckptMetaDone_ : 0);
            obs::span(obs::Cat::Engine, kCkptLane, "ckpt.delete",
                      ckptMetaDone_, t3);
            finishCheckpoint(half, t3);
        });
    });
}

void
KvEngine::writeCatalog(const std::vector<JmtEntry> &entries,
                       std::function<void(Tick)> cb)
{
    if (entries.empty()) {
        cb(eq_.now());
        return;
    }
    const auto g = std::uint32_t(
        std::max<std::uint32_t>(1, ssd_.ftl().sectorsPerUnit()));
    std::set<Lba> bases;
    for (const JmtEntry &e : entries) {
        const Lba rel = layout_.catalogLba(e.key) -
                        layout_.catalogStart;
        bases.insert(layout_.catalogStart + alignDown(rel, g));
    }
    struct Job
    {
        std::size_t outstanding;
        Tick last = 0;
        std::function<void(Tick)> cb;
    };
    auto job = std::make_shared<Job>();
    job->outstanding = bases.size();
    job->cb = std::move(cb);
    for (Lba base : bases) {
        std::vector<SectorData> payload(g);
        for (std::uint32_t s = 0; s < g; ++s) {
            for (std::uint32_t c = 0; c < kChunksPerSector; ++c) {
                const std::uint64_t k =
                    (base - layout_.catalogStart + s) *
                        kCatalogEntriesPerSector +
                    c;
                if (k < cfg_.recordCount &&
                    keymap_[k].catalogVersion > 0) {
                    payload[s].chunks[c] = catalogToken(
                        k, keymap_[k].catalogVersion,
                        keymap_[k].catalogChunks);
                }
            }
        }
        stats_.add("engine.catalogSectorsWritten", g);
        ssd_.submit(Command::write(base, std::move(payload),
                                   IoCause::Metadata),
                    [job](const CmdResult &r) {
                        job->last = std::max(job->last, r.require());
                        if (--job->outstanding == 0)
                            job->cb(job->last);
                    });
    }
}

void
KvEngine::deleteLogs(std::uint8_t half, std::function<void(Tick)> cb)
{
    // Baseline has no vendor extension: plain trim of the half.
    Command c = cfg_.mode == CheckpointMode::Baseline
                    ? Command::trim(layout_.journalStart[half],
                                    layout_.journalSectors)
                    : Command::deleteLogs(layout_.journalStart[half],
                                          layout_.journalSectors);
    ssd_.submit(std::move(c),
                [cb = std::move(cb)](const CmdResult &r) {
                    cb(r.require());
                });
}

void
KvEngine::finishCheckpoint(std::uint8_t half, Tick t)
{
    journal_.onHalfFreed(half);
    ckptInProgress_ = false;
    ckptDurations_.push_back(t - ckptStart_);
    if (telem_ != nullptr)
        telem_->noteCheckpointEnd(t, t - ckptStart_);
    stats_.add("engine.ckptTicks", t - ckptStart_);
    obs::span(obs::Cat::Engine, kCkptLane, "checkpoint", ckptStart_,
              t, {{"half", half}});
    if (obs::attributionOn()) {
        ckptRec_.dataDoneTick = ckptDataDone_;
        ckptRec_.metaDoneTick = ckptMetaDone_;
        ckptRec_.endTick = t;
        const StatRegistry &ds = ssd_.stats();
        ckptRec_.cowCommands =
            cowCommandCount(ds) - ckptRec_.cowCommands;
        ckptRec_.remappedPairs =
            ds.get("isce.remappedPairs") - ckptRec_.remappedPairs;
        ckptRec_.remappedUnits =
            ds.get("isce.remappedUnits") - ckptRec_.remappedUnits;
        ckptRec_.copiedPairs =
            ds.get("isce.copiedPairs") - ckptRec_.copiedPairs;
        ckptRec_.copiedChunks =
            ds.get("isce.copiedChunks") - ckptRec_.copiedChunks;
        ckptRec_.bufferedSmallRecords =
            ds.get("isce.bufferedSmallRecords") -
            ckptRec_.bufferedSmallRecords;
        obs::attrNoteCheckpoint(ckptRec_);
    }
    ++ckptSeq_;
    policy_->onCheckpointEnd(t, t - ckptStart_);
    drainDeferred();
    const bool threshold_hit =
        policy_->onAppend(policySignals()).checkpoint;
    if (pendingCkptRequest_ || threshold_hit) {
        pendingCkptRequest_ = false;
        requestCheckpoint(obs::CkptTrigger::Backlog);
    }
}

void
KvEngine::verifyKeyContent(std::uint64_t key,
                           const KeyState &st) const
{
    if (st.version == 0)
        return;
    if (st.storedChunks == 0) {
        // Deleted key: a journal-resident tombstone must read back;
        // a checkpointed deletion has no on-disk footprint.
        if (!st.inJournal)
            return;
        const Lba lba =
            layout_.journalChunkLba(st.half, st.journalChunk);
        const auto shift =
            std::uint32_t(st.journalChunk % kChunksPerSector);
        SectorData buf;
        ssd_.peek(lba, 1, &buf);
        if (buf.chunks[shift] != tombstoneToken(key, st.version)) {
            std::ostringstream os;
            os << "tombstone mismatch: key " << key << " version "
               << st.version;
            throw std::runtime_error(os.str());
        }
        return;
    }
    Lba lba;
    std::uint32_t shift = 0;
    if (st.inJournal) {
        lba = layout_.journalChunkLba(st.half, st.journalChunk);
        shift = std::uint32_t(st.journalChunk % kChunksPerSector);
    } else {
        lba = layout_.targetLba(key);
    }
    const auto nsect = std::uint32_t(
        divCeil(shift + st.storedChunks, kChunksPerSector));
    std::vector<SectorData> buf(nsect);
    ssd_.peek(lba, nsect, buf.data());
    for (std::uint32_t c = 0; c < st.storedChunks; ++c) {
        const std::uint32_t pos = shift + c;
        const std::uint64_t got =
            buf[pos / kChunksPerSector]
                .chunks[pos % kChunksPerSector];
        const std::uint64_t want =
            dataChunkToken(key, st.version, c);
        if (got != want) {
            const DecodedToken d = decodeToken(got);
            std::ostringstream os;
            os << "content mismatch: key " << key << " version "
               << st.version << " chunk " << c << " at lba " << lba
               << (st.inJournal ? " (journal" : " (data")
               << " half=" << int(st.half)
               << " chunkOff=" << st.journalChunk
               << " storedChunks=" << st.storedChunks
               << ") got tag=" << int(d.tag) << " key=" << d.key
               << " ver=" << d.version << " aux=" << d.aux;
            throw std::runtime_error(os.str());
        }
    }
}

std::uint64_t
KvEngine::verifyAllKeys() const
{
    std::uint64_t verified = 0;
    for (std::uint64_t key = 0; key < cfg_.recordCount; ++key) {
        const KeyState &st = keymap_[key];
        if (st.version == 0)
            continue;
        verifyKeyContent(key, st);
        ++verified;
    }
    return verified;
}

std::vector<KvEngine::ParsedLog>
KvEngine::parseJournalHalf(std::uint8_t half) const
{
    const std::uint64_t nchunks = layout_.journalChunks();
    std::vector<std::uint64_t> toks(nchunks, 0);
    const std::uint64_t nsect = layout_.journalSectors;
    std::vector<SectorData> buf(nsect);
    ssd_.peek(layout_.journalStart[half], std::uint32_t(nsect),
              buf.data());
    for (std::uint64_t s = 0; s < nsect; ++s) {
        for (std::uint32_t c = 0; c < kChunksPerSector; ++c)
            toks[s * kChunksPerSector + c] = buf[s].chunks[c];
    }
    std::vector<ParsedLog> logs;
    std::uint64_t pos = 0;
    while (pos < nchunks) {
        const DecodedToken d = decodeToken(toks[pos]);
        if (d.tag == TokenTag::Tombstone) {
            // chunks == 0 marks a deletion record.
            logs.push_back(ParsedLog{d.key,
                                     std::uint32_t(d.version), half,
                                     pos, 0});
            ++pos;
            continue;
        }
        if (d.tag != TokenTag::Data || d.aux != 0) {
            ++pos;
            continue;
        }
        std::uint64_t n = 1;
        while (pos + n < nchunks) {
            const DecodedToken dn = decodeToken(toks[pos + n]);
            if (dn.tag == TokenTag::Data && dn.key == d.key &&
                dn.version == d.version && dn.aux == n) {
                ++n;
            } else {
                break;
            }
        }
        logs.push_back(ParsedLog{d.key, std::uint32_t(d.version),
                                 half, pos, std::uint32_t(n)});
        pos += n;
    }
    return logs;
}

RecoveryInfo
KvEngine::recover()
{
    RecoveryInfo info;
    const Tick t0 = eq_.now();

    // 1. Restore the keymap from the on-disk catalog.
    ssd_.submitSync(Command::read(layout_.catalogStart,
                                  layout_.catalogSectors,
                                  IoCause::Metadata));
    std::vector<SectorData> cat(layout_.catalogSectors);
    ssd_.peek(layout_.catalogStart,
              std::uint32_t(layout_.catalogSectors), cat.data());
    for (std::uint64_t k = 0; k < cfg_.recordCount; ++k) {
        const std::uint64_t tok =
            cat[k / kCatalogEntriesPerSector]
                .chunks[k % kCatalogEntriesPerSector];
        const DecodedToken d = decodeToken(tok);
        if (d.tag != TokenTag::Catalog || d.key != k)
            continue;
        KeyState &st = keymap_[k];
        st.version = std::uint32_t(d.version);
        st.assignedVersion = st.version;
        st.storedChunks = std::uint32_t(d.aux);
        st.inJournal = false;
        st.catalogVersion = st.version;
        st.catalogChunks = st.storedChunks;
        ++info.catalogKeys;
    }

    // 2. Scan both journal halves (pre-read + parse, paper §III-G).
    std::vector<ParsedLog> latest_logs;
    {
        std::unordered_map<std::uint64_t, ParsedLog> latest;
        for (std::uint8_t half = 0; half < 2; ++half) {
            ssd_.submitSync(Command::read(layout_.journalStart[half],
                                          layout_.journalSectors,
                                          IoCause::Journal));
            for (const ParsedLog &log : parseJournalHalf(half)) {
                if (log.version <= keymap_[log.key].catalogVersion)
                    continue;
                auto it = latest.find(log.key);
                if (it == latest.end() ||
                    it->second.version < log.version) {
                    latest[log.key] = log;
                }
            }
        }
        latest_logs.reserve(latest.size());
        for (auto &[k, log] : latest)
            latest_logs.push_back(log);
    }
    info.replayedLogs = latest_logs.size();

    // 3. Apply replayed logs to the keymap and re-checkpoint them so
    //    the store restarts clean (data area authoritative).
    std::vector<JmtEntry> entries;
    entries.reserve(latest_logs.size());
    const std::uint32_t uc =
        ssd_.ftl().mappingUnitBytes() / kChunkBytes;
    for (const ParsedLog &log : latest_logs) {
        const bool tombstone = log.chunks == 0;
        KeyState &st = keymap_[log.key];
        st.version = log.version;
        st.assignedVersion = log.version;
        st.storedChunks = tombstone ? 0 : log.chunks;
        st.inJournal = true;
        st.half = log.half;
        st.journalChunk = log.chunkOff;
        JmtEntry e;
        e.key = log.key;
        e.version = log.version;
        e.half = log.half;
        e.chunkOff = log.chunkOff;
        e.chunks = tombstone ? 1 : log.chunks;
        e.payloadBytes = tombstone ? 0 : log.chunks * kChunkBytes;
        e.type = (!tombstone && log.chunkOff % uc == 0 &&
                  log.chunks % uc == 0)
                     ? LogType::Full
                     : LogType::Partial;
        entries.push_back(e);
    }

    std::vector<JmtEntry> values;
    std::vector<JmtEntry> tombs;
    for (const JmtEntry &e : entries)
        (e.payloadBytes == 0 ? tombs : values).push_back(e);

    bool finished = false;
    Tick end_tick = eq_.now();
    strategy_->run(values, [&](Tick t_values) {
        trimTombstones(tombs, [&, t_values](Tick t_tombs) {
            const Tick t = std::max(t_values, t_tombs);
            for (const JmtEntry &e : entries) {
                KeyState &st = keymap_[e.key];
                st.inJournal = false;
                st.catalogVersion = e.version;
                st.catalogChunks =
                    e.payloadBytes == 0 ? 0 : e.chunks;
            }
            writeCatalog(entries, [&, t](Tick t2) {
                deleteLogs(0, [&, t, t2](Tick t3) {
                    deleteLogs(1, [&, t, t2, t3](Tick t4) {
                        finished = true;
                        end_tick = std::max({t, t2, t3, t4});
                    });
                });
            });
        });
    });
    while (!finished && eq_.step()) {
    }
    if (!finished)
        throw std::logic_error("recovery did not converge");
    info.duration = end_tick - t0;
    stats_.add("engine.recoveries");
    stats_.add("engine.recoveredLogs", info.replayedLogs);
    return info;
}

} // namespace checkin
