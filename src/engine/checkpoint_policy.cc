#include "engine/checkpoint_policy.h"

namespace checkin {

const char *
checkpointPolicyName(CheckpointPolicyKind kind)
{
    switch (kind) {
        case CheckpointPolicyKind::Fixed:
            return "fixed";
        case CheckpointPolicyKind::Adaptive:
            return "adaptive";
    }
    return "?";
}

// ---------------------------------------------------------------------
// Fill-rate estimator (shared by all policies)
// ---------------------------------------------------------------------
//
// Two EWMAs over the active half's byte level, decayed with the
// rational factor tau / (tau + dt) per sample — no transcendental
// calls, so the estimate is a pure rational function of the sample
// history and bit-stable across toolchains. For a constant fill rate
// r the credit converges to r * tau, so rate = credit / tau.

void
CheckpointPolicy::noteAppend(Tick now, std::uint64_t level_bytes)
{
    if (!primed_) {
        primed_ = true;
        lastTick_ = now;
        lastLevel_ = level_bytes;
        return;
    }
    const std::uint64_t delta =
        level_bytes > lastLevel_ ? level_bytes - lastLevel_ : 0;
    const Tick dt = now > lastTick_ ? now - lastTick_ : 0;
    fastCredit_ = fastCredit_ * (double(fastTau_) /
                                 double(fastTau_ + dt)) +
                  double(delta);
    slowCredit_ = slowCredit_ * (double(slowTau_) /
                                 double(slowTau_ + dt)) +
                  double(delta);
    lastTick_ = now;
    lastLevel_ = level_bytes;
}

double
CheckpointPolicy::fillRateBytesPerSec() const
{
    return fastCredit_ / double(fastTau_) * double(kSec);
}

double
CheckpointPolicy::slowFillRateBytesPerSec() const
{
    return slowCredit_ / double(slowTau_) * double(kSec);
}

std::unique_ptr<CheckpointPolicy>
CheckpointPolicy::create(const EngineConfig &cfg)
{
    switch (cfg.checkpointPolicy) {
        case CheckpointPolicyKind::Fixed:
            return std::make_unique<FixedPolicy>(cfg);
        case CheckpointPolicyKind::Adaptive:
            return std::make_unique<AdaptivePolicy>(cfg);
    }
    return std::make_unique<FixedPolicy>(cfg);
}

// ---------------------------------------------------------------------
// FixedPolicy
// ---------------------------------------------------------------------

FixedPolicy::FixedPolicy(const EngineConfig &cfg)
    : CheckpointPolicy(cfg.adaptive.fastTau, cfg.adaptive.slowTau),
      interval_(cfg.checkpointInterval),
      thresholdBytes_(cfg.checkpointJournalBytes)
{
}

PolicyDecision
FixedPolicy::onTimer(const PolicySignals &)
{
    // The historical timer body called requestCheckpoint
    // unconditionally; requestCheckpoint itself handles the
    // in-progress / empty-JMT cases.
    return {true, obs::CkptTrigger::Timer};
}

PolicyDecision
FixedPolicy::onAppend(const PolicySignals &sig)
{
    // Exactly the historical inline predicate (the caller keeps its
    // !checkpointInProgress guard, as before).
    return {sig.journalBytes >= thresholdBytes_,
            obs::CkptTrigger::JournalBytes};
}

// ---------------------------------------------------------------------
// AdaptivePolicy
// ---------------------------------------------------------------------

AdaptivePolicy::AdaptivePolicy(const EngineConfig &cfg)
    : CheckpointPolicy(cfg.adaptive.fastTau, cfg.adaptive.slowTau),
      knobs_(cfg.adaptive),
      ckptDurEwma_(cfg.adaptive.initialCheckpointDuration)
{
}

bool
AdaptivePolicy::safetyBound(const PolicySignals &sig) const
{
    if (sig.journalBytes == 0 || sig.journalCapacityBytes == 0)
        return false;
    const double cap = double(sig.journalCapacityBytes);
    // Absolute backstop: never let the half run past safetyFraction
    // without a checkpoint, whatever the rate estimate says.
    if (double(sig.journalBytes) >= knobs_.safetyFraction * cap)
        return true;
    // Projection: would the half fill before a checkpoint of EWMA
    // duration (with margin) could free the other one?
    const double rate_per_tick =
        fillRateBytesPerSec() / double(kSec);
    const double projected =
        double(sig.journalBytes) +
        knobs_.safetyMargin * rate_per_tick * double(ckptDurEwma_);
    return projected >= cap;
}

double
AdaptivePolicy::stallFactor(const PolicySignals &sig)
{
    // Checkpoint-stall dwell accumulated since the last control
    // tick, normalized to the control interval and folded into an
    // EWMA. 0 = checkpoints are free; -> 1 = every interval burns
    // multiples of itself in stalls.
    const Tick stall = sig.checkpointStallTicks;
    const Tick delta =
        stall > lastStallTicks_ ? stall - lastStallTicks_ : 0;
    lastStallTicks_ = stall;
    const Tick dt = sig.now > lastControlTick_
                        ? sig.now - lastControlTick_
                        : knobs_.controlInterval;
    lastControlTick_ = sig.now;
    const double x = dt > 0 ? double(delta) / double(dt) : 0.0;
    stallEwma_ = 0.75 * stallEwma_ + 0.25 * x;
    return stallEwma_ / (1.0 + stallEwma_);
}

PolicyDecision
AdaptivePolicy::onTimer(const PolicySignals &sig)
{
    const double stall = stallFactor(sig);
    if (sig.checkpointInProgress)
        return {};
    if (safetyBound(sig))
        return {true, obs::CkptTrigger::Safety};
    if (sig.journalBytes == 0)
        return {};
    const double fast = fillRateBytesPerSec();
    const double slow = slowFillRateBytesPerSec();
    // Burst: the fast rate has pulled away from the long-run rate.
    // Defer — stacking checkpoint device work on top of an arrival
    // burst is exactly what widens the tail. Safety above still
    // bounds how long deferral can go on.
    if (slow > 0.0 && fast > knobs_.burstFactor * slow)
        return {};
    // Lull: arrivals have fallen off; checkpoint now while the
    // device is idle so the next burst starts with an empty half.
    if (slow > 0.0 && fast < knobs_.idleFraction * slow &&
        sig.journalBytes >= knobs_.minCheckpointBytes)
        return {true, obs::CkptTrigger::AdaptivePace};
    // Steady state: pace at paceFraction of the half, stretched
    // toward the safety ceiling when recent checkpoints caused
    // measurable foreground stall (do them less often, as late as
    // safety allows).
    const double pace =
        knobs_.paceFraction +
        (knobs_.safetyFraction - knobs_.paceFraction) * stall;
    if (double(sig.journalBytes) >=
        pace * double(sig.journalCapacityBytes))
        return {true, obs::CkptTrigger::AdaptivePace};
    return {};
}

PolicyDecision
AdaptivePolicy::onAppend(const PolicySignals &sig)
{
    // The append path only enforces the hard bound; pacing decisions
    // belong to the control timer.
    if (sig.checkpointInProgress)
        return {};
    if (safetyBound(sig))
        return {true, obs::CkptTrigger::Safety};
    return {};
}

void
AdaptivePolicy::onCheckpointEnd(Tick, Tick duration)
{
    const std::int64_t err =
        std::int64_t(duration) - std::int64_t(ckptDurEwma_);
    ckptDurEwma_ = Tick(std::int64_t(ckptDurEwma_) +
                        (err >> knobs_.durationEwmaShift));
}

} // namespace checkin
