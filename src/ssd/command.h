/**
 * @file
 * Block-interface command set of the Check-In SSD.
 *
 * Read/Write/Trim/Flush are the standard NVMe set; CowSingle,
 * CowMulti, CheckpointRemap, and DeleteLogs are the vendor-specific
 * extensions the paper introduces (§III-C): CoW copy commands for
 * in-storage checkpointing, the batched checkpoint request, and the
 * journal-log deletion notice consumed by the ISCE deallocator.
 */

#ifndef CHECKIN_SSD_COMMAND_H_
#define CHECKIN_SSD_COMMAND_H_

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "ftl/ftl.h"
#include "ftl/ftl_types.h"
#include "nand/nand_types.h"
#include "sim/types.h"

namespace checkin {

/** Host-visible outcome of a command. */
enum class CmdStatus : std::uint8_t
{
    Ok = 0,
    /** Media error the front-end could not retry away (the NAND
     *  read stayed uncorrectable past the retry budget). */
    MediaError,
};

/** Completion record delivered to a command's submitter. */
struct CmdResult
{
    /** Completion tick (error completions report when the device
     *  gave up, time for all retries included). */
    Tick tick = 0;
    CmdStatus status = CmdStatus::Ok;
    /** Front-end retry attempts this command consumed. */
    std::uint32_t retries = 0;

    bool ok() const { return status == CmdStatus::Ok; }

    /** Completion tick; throws when the command failed. */
    Tick
    require() const
    {
        if (status != CmdStatus::Ok) {
            throw std::runtime_error(
                "SSD command failed: unrecoverable media error");
        }
        return tick;
    }
};

/**
 * One source -> destination copy/remap descriptor.
 *
 * Addresses are chunk-precise: the record starts @p srcChunkShift
 * 128 B chunks into sector @p src and is @p chunks chunks long; it is
 * delivered to sector @p dst starting at chunk 0 (data-area targets
 * are always sector aligned).
 */
struct CowPair
{
    /** First source sector (journal area). */
    Lba src = 0;
    /** Record start chunk within the first source sector (0..3). */
    std::uint32_t srcChunkShift = 0;
    /** First destination sector (data area). */
    Lba dst = 0;
    /** Record length in 128 B chunks. */
    std::uint32_t chunks = 0;
    /**
     * Force the physical-copy path even if remapping would be
     * possible; the Check-In engine sets this for PARTIAL/MERGED
     * records whose journal unit holds more than one record.
     */
    bool forceCopy = false;
    /** Recovery version recorded with the destination. */
    std::uint64_t version = 0;

    /** Source sectors touched. */
    std::uint32_t
    srcSectors() const
    {
        return std::uint32_t(
            divCeil(srcChunkShift + chunks, kChunksPerSector));
    }

    /** Destination sectors written. */
    std::uint32_t
    dstSectors() const
    {
        return std::uint32_t(divCeil(chunks, kChunksPerSector));
    }

    static CowPair
    make(Lba src, std::uint32_t src_chunk_shift, Lba dst,
         std::uint32_t chunks, std::uint64_t version = 0,
         bool force_copy = false)
    {
        CowPair p;
        p.src = src;
        p.srcChunkShift = src_chunk_shift;
        p.dst = dst;
        p.chunks = chunks;
        p.version = version;
        p.forceCopy = force_copy;
        return p;
    }
};

enum class CmdType : std::uint8_t
{
    Read,
    Write,
    Trim,
    Flush,
    CowSingle,       //!< one CoW copy per command (ISC-A)
    CowMulti,        //!< batched CoW copies (ISC-B)
    CheckpointRemap, //!< batched CoW with remapping (ISC-C, Check-In)
    DeleteLogs,      //!< trim checkpointed journal logs (deallocator)
};

/** Name for stats keys. */
const char *cmdTypeName(CmdType type);

/** A host command. Fields beyond the type's needs are ignored. */
struct Command
{
    CmdType type = CmdType::Read;
    IoCause cause = IoCause::Query;

    /** Read/Write/Trim/DeleteLogs: start sector. */
    Lba lba = 0;
    /** Read/Write/Trim/DeleteLogs: sector count. */
    std::uint64_t nsect = 0;
    /** Write: payload, one entry per sector. */
    std::vector<SectorData> payload;
    /** Write: recovery version for the OOB area. */
    std::uint64_t version = 0;
    /**
     * Write: optional per-mapping-unit OOB annotations (checkpoint
     * target + version), one per unit covered; empty = defaults.
     * Used by the sector-aligning engine's journal writes so the
     * device can rebuild remaps after power loss (paper §III-G).
     */
    std::vector<OobEntry> unitOob;

    /** CowSingle/CowMulti/CheckpointRemap: copy descriptors. */
    std::vector<CowPair> pairs;

    static Command
    read(Lba lba, std::uint64_t nsect, IoCause cause = IoCause::Query)
    {
        Command c;
        c.type = CmdType::Read;
        c.cause = cause;
        c.lba = lba;
        c.nsect = nsect;
        return c;
    }

    static Command
    write(Lba lba, std::vector<SectorData> payload, IoCause cause,
          std::uint64_t version = 0)
    {
        Command c;
        c.type = CmdType::Write;
        c.cause = cause;
        c.lba = lba;
        c.nsect = payload.size();
        c.payload = std::move(payload);
        c.version = version;
        return c;
    }

    static Command
    trim(Lba lba, std::uint64_t nsect)
    {
        Command c;
        c.type = CmdType::Trim;
        c.lba = lba;
        c.nsect = nsect;
        return c;
    }

    static Command
    flush()
    {
        Command c;
        c.type = CmdType::Flush;
        return c;
    }

    static Command
    cowSingle(CowPair pair)
    {
        Command c;
        c.type = CmdType::CowSingle;
        c.cause = IoCause::Checkpoint;
        c.pairs.push_back(pair);
        return c;
    }

    static Command
    cowMulti(std::vector<CowPair> pairs)
    {
        Command c;
        c.type = CmdType::CowMulti;
        c.cause = IoCause::Checkpoint;
        c.pairs = std::move(pairs);
        return c;
    }

    static Command
    checkpointRemap(std::vector<CowPair> pairs)
    {
        Command c;
        c.type = CmdType::CheckpointRemap;
        c.cause = IoCause::Checkpoint;
        c.pairs = std::move(pairs);
        return c;
    }

    static Command
    deleteLogs(Lba lba, std::uint64_t nsect)
    {
        Command c;
        c.type = CmdType::DeleteLogs;
        c.cause = IoCause::Metadata;
        c.lba = lba;
        c.nsect = nsect;
        return c;
    }
};

} // namespace checkin

#endif // CHECKIN_SSD_COMMAND_H_
