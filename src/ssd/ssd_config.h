/**
 * @file
 * SSD front-end configuration: interface, firmware, and buffering.
 */

#ifndef CHECKIN_SSD_SSD_CONFIG_H_
#define CHECKIN_SSD_SSD_CONFIG_H_

#include <cstdint>

#include "sim/types.h"

namespace checkin {

struct SsdConfig
{
    /** Host interface bandwidth (PCIe 3.0 x4 class). */
    std::uint64_t busBytesPerSec = 3'200'000'000;

    /** Firmware time to decode/complete one command. */
    Tick commandOverhead = 2 * kUsec;

    /**
     * NVMe submission-queue depth: commands beyond this many
     * outstanding wait for a completion before being admitted.
     */
    std::uint32_t queueDepth = 256;

    /** Embedded-CPU time to process one checkpoint/CoW entry. */
    Tick remapEntryTime = 500 * kNsec;

    /**
     * Embedded-CPU time per mapping unit touched by a host command
     * (address translation + map-cache handling). Smaller mapping
     * units mean more entries per request — the metadata-processing
     * overhead behind the paper's Fig 13(a).
     */
    Tick perUnitCpuTime = 250 * kNsec;

    /** Service time for a DRAM-buffered read hit. */
    Tick dramAccessTime = 1 * kUsec;

    /**
     * Capacitor-backed write buffer capacity in flash pages. Writes
     * ack from the buffer; when this many programs are in flight the
     * ack stalls until one drains (backpressure).
     */
    std::uint32_t writeBufferPages = 32;

    /** Bytes of one CoW descriptor on the wire. */
    std::uint32_t cowDescriptorBytes = 16;

    /**
     * Capacity (in sectors) of the ISCE's capacitor-backed small-copy
     * buffer for PARTIAL/MERGED checkpoint records (paper §III-E).
     * Entries are elided when superseded and flushed aggregated once
     * the buffer fills. 0 disables deferral (immediate copies).
     */
    std::uint32_t smallBufferSectors = 512;

    /**
     * Front-end retry budget for host reads whose NAND reads stayed
     * uncorrectable: the command is re-issued to the FTL this many
     * times (with backoff) before completing with
     * CmdStatus::MediaError.
     */
    std::uint32_t readRetryBudget = 3;

    /** Firmware backoff before front-end retry attempt n (n * this). */
    Tick retryBackoff = 100 * kUsec;
};

} // namespace checkin

#endif // CHECKIN_SSD_SSD_CONFIG_H_
