/**
 * @file
 * The simulated SSD: host interface + controller + FTL + NAND.
 *
 * Commands are processed with timeline semantics — the device
 * computes each command's completion tick from firmware, bus, and
 * flash resource reservations — and the completion callback is
 * delivered through the event queue at that tick, so hosts observe
 * realistic queueing under contention.
 */

#ifndef CHECKIN_SSD_SSD_H_
#define CHECKIN_SSD_SSD_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <set>
#include <vector>

#include "ftl/ftl.h"
#include "ftl/ftl_config.h"
#include "nand/nand_config.h"
#include "nand/nand_flash.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/inline_event.h"
#include "sim/resource.h"
#include "sim/sim_context.h"
#include "sim/stats.h"
#include "ssd/command.h"
#include "ssd/isce.h"
#include "ssd/ssd_config.h"

namespace checkin {

/** A complete Check-In-capable SSD. */
class Ssd
{
  public:
    /**
     * Completion callback; receives the command's CmdResult
     * (completion tick + status + retry count). Inline-stored like
     * event callbacks, so a submission never heap-allocates for the
     * callback: the callable itself sits in a pooled pending slot
     * and the scheduled event captures only {this, slot index}.
     */
    using Completion = InlineFunction<void(const CmdResult &)>;

    Ssd(SimContext &ctx, const NandConfig &nand_cfg,
        const FtlConfig &ftl_cfg, const SsdConfig &ssd_cfg);

    /**
     * Submit a command; @p cb fires through the event queue at the
     * command's completion tick. Commands whose NAND reads stayed
     * uncorrectable past the retry budget complete with
     * CmdStatus::MediaError (see CmdResult::require()).
     */
    void submit(Command cmd, Completion cb);

    /**
     * Synchronous variant for tests and recovery paths: process the
     * command immediately and return the completion tick.
     * @throws std::runtime_error on CmdStatus::MediaError.
     */
    Tick submitSync(const Command &cmd);

    /**
     * Functional sector read with no timing (verification and
     * host-side read modeling). Content buffered in the ISCE's
     * small-copy buffer overlays the flash state, exactly as a
     * device read would serve it.
     */
    void
    peek(Lba lba, std::uint32_t nsect, SectorData *out) const
    {
        ftl_.peekSectors(lba, nsect, out);
        for (std::uint32_t i = 0; i < nsect; ++i)
            isce_.overlay(lba + i, &out[i]);
    }

    Ftl &ftl() { return ftl_; }
    const Ftl &ftl() const { return ftl_; }
    NandFlash &nand() { return nand_; }
    const NandFlash &nand() const { return nand_; }
    Isce &isce() { return isce_; }
    SimContext &context() { return ctx_; }
    EventQueue &eventQueue() { return eq_; }
    const SsdConfig &config() const { return cfg_; }

    /** Front-end stats (commands, bus, backpressure stalls). */
    const StatRegistry &stats() const { return stats_; }

    /** Logical capacity in 512 B sectors. */
    std::uint64_t capacitySectors() const
    {
        return ftl_.logicalSectors();
    }

    /** Give the deallocator an idle-time GC opportunity. */
    void idleTick();

    /**
     * Sudden power loss with SPOR (paper §III-D, §III-G): the
     * capacitors flush the device-side volatile state (small-copy
     * buffer, open flash pages), then the firmware rebuilds its RAM
     * mapping structures from the OOB area. After this returns, the
     * device serves the exact pre-loss state without any host help.
     */
    Ftl::RebuildReport suddenPowerLoss();

    /** Earliest tick at which every device resource is idle. */
    Tick
    quiesceTick() const
    {
        Tick t = nand_.allIdleAt();
        t = std::max(t, bus_.freeAt());
        return std::max(t, cpu_.freeAt());
    }

  private:
    CmdResult processCommand(const Command &cmd);
    Tick busTransfer(Tick earliest, std::uint64_t bytes);
    Tick applyWriteBackpressure(Tick ack);
    /** Queue-depth admission: tick at which the command may start. */
    Tick admitCommand(Tick now);

    /** Deliver and free pending completion slot @p idx. */
    void completePending(std::uint32_t idx);

    /** Trace lane for front-end events (Cat::Ssd). */
    static constexpr std::uint32_t kFrontendLane = 0;

    /** Interned hot-path counters (see sim/stats.h). */
    static constexpr std::size_t kCmdTypeCount = 8;

    SimContext &ctx_;
    EventQueue &eq_;
    SsdConfig cfg_;
    NandFlash nand_;
    Ftl ftl_;
    Resource bus_{"pcie"};
    Resource cpu_{"ssd-cpu"};
    StatRegistry stats_;
    std::array<StatId, kCmdTypeCount> sCmd_;
    StatId sWriteStalls_;
    StatId sQueueFullStalls_;
    StatId sCmdRetries_;
    StatId sCmdErrors_;
    /** Telemetry sampler of the run (nullptr: telemetry off). */
    obs::TelemetrySampler *telem_ = nullptr;
    Isce isce_;
    std::multiset<Tick> inflightPrograms_;
    std::multiset<Tick> inflightCommands_;

    /** In-flight completion slot: pooled so the scheduled event only
     *  captures {this, index} and stays inline. */
    struct Pending
    {
        Completion cb;
        CmdResult res;
        std::uint32_t next = 0; //!< free-list link when unused
    };
    static constexpr std::uint32_t kNoPending = ~std::uint32_t{0};
    std::vector<Pending> pending_;
    std::uint32_t freePending_ = kNoPending;
};

} // namespace checkin

#endif // CHECKIN_SSD_SSD_H_
