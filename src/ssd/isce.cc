#include "ssd/isce.h"

#include <algorithm>

namespace checkin {

bool
Isce::canRemap(const CowPair &pair) const
{
    if (pair.forceCopy || pair.srcChunkShift != 0)
        return false;
    const std::uint32_t spu = ftl_.sectorsPerUnit();
    const std::uint32_t chunks_per_unit = spu * kChunksPerSector;
    if (pair.src % spu != 0 || pair.dst % spu != 0 ||
        pair.chunks % chunks_per_unit != 0) {
        return false;
    }
    const Lpn first = pair.src / spu;
    const Lpn units = pair.chunks / chunks_per_unit;
    for (Lpn u = 0; u < units; ++u) {
        if (!ftl_.isMapped(first + u))
            return false;
    }
    return true;
}

Tick
Isce::copyRecord(const CowPair &pair, Tick start)
{
    // Chunk-exact gather: read the source pages, extract the record's
    // chunk run, and rewrite it at the destination (chunk 0 aligned).
    const std::uint32_t src_sectors = pair.srcSectors();
    const std::uint32_t dst_sectors = pair.dstSectors();
    std::vector<SectorData> src_buf(src_sectors);
    ftl_.peekSectors(pair.src, src_sectors, src_buf.data());
    const Tick fetched =
        ftl_.readSectors(pair.src, src_sectors, IoCause::Checkpoint,
                         start);
    std::vector<SectorData> dst_buf(dst_sectors);
    for (std::uint32_t c = 0; c < pair.chunks; ++c) {
        const std::uint32_t s = pair.srcChunkShift + c;
        dst_buf[c / kChunksPerSector].chunks[c % kChunksPerSector] =
            src_buf[s / kChunksPerSector].chunks[s % kChunksPerSector];
    }
    return ftl_.writeSectors(pair.dst, dst_sectors, dst_buf.data(),
                             IoCause::Checkpoint, fetched,
                             pair.version);
}

Tick
Isce::bufferSmallRecord(const CowPair &pair, Tick start)
{
    // Gather the record's chunks from the journal into device DRAM.
    const std::uint32_t src_sectors = pair.srcSectors();
    std::vector<SectorData> src_buf(src_sectors);
    ftl_.peekSectors(pair.src, src_sectors, src_buf.data());
    // Sources may themselves sit in the buffer of a previous round
    // (they do not: sources are journal LBAs, never buffered).
    const Tick fetched = ftl_.readSectors(
        pair.src, src_sectors, IoCause::Checkpoint, start);
    const std::uint32_t dst_sectors = pair.dstSectors();
    for (std::uint32_t s = 0; s < dst_sectors; ++s) {
        SectorData out;
        for (std::uint32_t c = 0; c < kChunksPerSector; ++c) {
            const std::uint32_t idx = s * kChunksPerSector + c;
            if (idx >= pair.chunks)
                break;
            const std::uint32_t pos = pair.srcChunkShift + idx;
            out.chunks[c] = src_buf[pos / kChunksPerSector]
                                .chunks[pos % kChunksPerSector];
        }
        // Replacing an existing entry elides the previous version's
        // flash write entirely.
        auto it = smallBuf_.find(pair.dst + s);
        if (it != smallBuf_.end()) {
            it->second = BufferedSector{out, pair.version};
            stats_.add("isce.elidedSmallWrites");
        } else {
            smallBuf_.emplace(pair.dst + s,
                              BufferedSector{out, pair.version});
        }
    }
    stats_.add("isce.bufferedSmallRecords");
    if (obs::traceOn()) {
        obs::instant(obs::Cat::Ssd, kIsceLane, "isce.buffer",
                     fetched, {{"chunks", pair.chunks}});
        obs::counterSample(obs::Cat::Ssd, kIsceLane, "isce.smallBuf",
                           fetched, smallBuf_.size());
    }
    return fetched;
}

Tick
Isce::flushSmallBuffer(Tick start)
{
    // Aggregate: coalesce contiguous sectors into single writes so a
    // multi-sector record (or adjacent records) costs one pass
    // through the FTL instead of per-sector read-modify-writes.
    std::vector<Lba> lbas;
    lbas.reserve(smallBuf_.size());
    for (const auto &[lba, data] : smallBuf_)
        lbas.push_back(lba);
    std::sort(lbas.begin(), lbas.end());

    Tick done = start;
    std::size_t i = 0;
    const std::uint32_t spu = ftl_.sectorsPerUnit();
    while (i < lbas.size()) {
        std::size_t j = i + 1;
        while (j < lbas.size() && lbas[j] == lbas[j - 1] + 1)
            ++j;
        std::vector<SectorData> run;
        run.reserve(j - i);
        std::uint64_t run_version = 0;
        for (std::size_t k = i; k < j; ++k) {
            const BufferedSector &b = smallBuf_.at(lbas[k]);
            run.push_back(b.data);
            run_version = std::max(run_version, b.version);
        }
        // Per-unit OOB carries the buffered versions so a power-loss
        // rebuild ranks these writes correctly against journal
        // annotations.
        const Lpn first_unit = lbas[i] / spu;
        const std::uint64_t units =
            (lbas[i] + run.size() - 1) / spu - first_unit + 1;
        std::vector<OobEntry> unit_oob(units);
        for (std::size_t k = i; k < j; ++k) {
            const std::uint64_t u = lbas[k] / spu - first_unit;
            unit_oob[u].version = std::max(
                unit_oob[u].version, smallBuf_.at(lbas[k]).version);
        }
        done = std::max(
            done, ftl_.writeSectors(lbas[i],
                                    std::uint32_t(run.size()),
                                    run.data(), IoCause::Checkpoint,
                                    start, run_version,
                                    unit_oob.data()));
        i = j;
    }
    stats_.add("isce.smallBufferFlushes");
    stats_.add("isce.flushedSmallSectors", smallBuf_.size());
    if (obs::traceOn()) {
        obs::span(obs::Cat::Ssd, kIsceLane, "isce.flush", start, done,
                  {{"sectors", smallBuf_.size()}});
        obs::counterSample(obs::Cat::Ssd, kIsceLane, "isce.smallBuf",
                           done, 0);
    }
    smallBuf_.clear();
    return done;
}

bool
Isce::overlay(Lba lba, SectorData *out) const
{
    const auto it = smallBuf_.find(lba);
    if (it == smallBuf_.end())
        return false;
    *out = it->second.data;
    return true;
}

void
Isce::invalidateRange(Lba lba, std::uint64_t nsect)
{
    if (smallBuf_.empty())
        return;
    // For large ranges (trims) iterating the buffer is cheaper.
    if (nsect > smallBuf_.size() * 4) {
        for (auto it = smallBuf_.begin(); it != smallBuf_.end();) {
            if (it->first >= lba && it->first < lba + nsect)
                it = smallBuf_.erase(it);
            else
                ++it;
        }
        return;
    }
    for (std::uint64_t s = 0; s < nsect; ++s)
        smallBuf_.erase(lba + s);
}

Tick
Isce::checkpoint(const std::vector<CowPair> &pairs, Tick start,
                 bool remap_allowed)
{
    Tick done = start;
    const std::uint32_t spu = ftl_.sectorsPerUnit();
    const std::uint32_t chunks_per_unit = spu * kChunksPerSector;
    for (const CowPair &pair : pairs) {
        // Per-entry embedded-CPU decode/lookup time (Algorithm 1's
        // JMT walk), serialized on the controller core.
        const Tick t = cpu_.reserve(start, cfg_.remapEntryTime);
        if (remap_allowed && canRemap(pair)) {
            // Newer than anything buffered for this destination.
            invalidateRange(pair.dst, pair.dstSectors());
            const Lpn src0 = pair.src / spu;
            const Lpn dst0 = pair.dst / spu;
            const Lpn units = pair.chunks / chunks_per_unit;
            Tick t_pair = t;
            for (Lpn u = 0; u < units; ++u) {
                t_pair = std::max(
                    t_pair, ftl_.remapUnit(src0 + u, dst0 + u, t));
            }
            stats_.add("isce.remappedPairs");
            stats_.add("isce.remappedUnits", units);
            obs::instant(obs::Cat::Ssd, kIsceLane, "isce.remap", t,
                         {{"units", units}});
            done = std::max(done, t_pair);
        } else if (remap_allowed && pair.forceCopy &&
                   cfg_.smallBufferSectors > 0 &&
                   pair.chunks < chunks_per_unit) {
            // PARTIAL/MERGED record flagged by a sector-aligning
            // engine: defer through the small-copy buffer
            // (paper §III-E). Unaligned raw records (ISC-C) take
            // the immediate copy path below.
            done = std::max(done, bufferSmallRecord(pair, t));
        } else {
            invalidateRange(pair.dst, pair.dstSectors());
            const Tick copied = copyRecord(pair, t);
            obs::span(obs::Cat::Ssd, kIsceLane, "isce.copy", t,
                      copied, {{"chunks", pair.chunks}});
            done = std::max(done, copied);
            stats_.add("isce.copiedPairs");
            stats_.add("isce.copiedChunks", pair.chunks);
        }
    }
    if (smallBuf_.size() >= cfg_.smallBufferSectors &&
        cfg_.smallBufferSectors > 0) {
        done = std::max(done, flushSmallBuffer(done));
    }
    return done;
}

std::uint32_t
Isce::onLogsDeleted(Tick now)
{
    stats_.add("isce.logDeletions");
    // The deallocator only steals the flash array for GC when it is
    // idle (paper §III-F): under load the reclaim is deferred.
    if (ftl_.nand().allIdleAt() > now)
        return 0;
    const std::uint32_t reclaimed = ftl_.runBackgroundGc(now);
    stats_.add("isce.idleGcBlocks", reclaimed);
    return reclaimed;
}

} // namespace checkin
