/**
 * @file
 * In-Storage Checkpointing Engine (paper §III-A, Fig 5).
 *
 * The ISCE sits in the SSD controller next to the FTL and implements:
 *  - the checkpoint processor (Algorithm 1): walk the CoW descriptors
 *    the host sent, remap journal slots to their data-area targets
 *    when the record is mapping-unit aligned, and fall back to a
 *    device-internal copy otherwise;
 *  - the deallocator: release journal mappings after checkpoints and
 *    invoke background GC when the device is idle.
 *
 * The log-manager role (acknowledging journal commits, batching
 * recovery metadata) is handled by the normal write path plus the
 * FTL's batched map persistence.
 */

#ifndef CHECKIN_SSD_ISCE_H_
#define CHECKIN_SSD_ISCE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ftl/ftl.h"
#include "obs/trace.h"
#include "sim/resource.h"
#include "sim/stats.h"
#include "ssd/command.h"
#include "ssd/ssd_config.h"

namespace checkin {

/** Device-side checkpoint processor + deallocator. */
class Isce
{
  public:
    Isce(Ftl &ftl, Resource &cpu, const SsdConfig &cfg,
         StatRegistry &stats)
        : ftl_(ftl), cpu_(cpu), cfg_(cfg), stats_(stats)
    {
        obs::nameLane(obs::Cat::Ssd, kIsceLane, "isce");
    }

    /**
     * Process a batched checkpoint request (CheckpointRemap command).
     *
     * For every descriptor: if both address ranges are aligned to the
     * mapping unit, every source unit is mapped, and the host did not
     * flag the record as merged, update the flash mapping table so the
     * data-area LPNs reference the journal slots (CoW remap, no flash
     * data traffic). Otherwise perform a device-internal copy, which
     * reads the source pages and rewrites the destination (counted as
     * redundant checkpoint writes).
     *
     * @param remap_allowed false degrades every entry to the copy
     *        path (models ISC-A/ISC-B class devices without the
     *        modified mapping method).
     * @return completion tick.
     */
    Tick checkpoint(const std::vector<CowPair> &pairs, Tick start,
                    bool remap_allowed);

    /**
     * Deallocator notification that checkpointed journal logs were
     * deleted; flushes aged small-copy buffer entries and runs
     * background GC when the flash array is idle.
     * @return blocks reclaimed by background GC.
     */
    std::uint32_t onLogsDeleted(Tick now);

    // ------------------------------------------------------------------
    // Small-copy write-back buffer (paper §III-E)
    // ------------------------------------------------------------------
    // Sub-unit (PARTIAL/MERGED) checkpoint copies are not programmed
    // immediately: their content is gathered into capacitor-backed
    // device DRAM, where a hot key's next checkpoint simply replaces
    // the entry (eliding the flash write entirely) and survivors are
    // programmed aggregated once the buffer fills.

    /**
     * Overlay buffered content onto @p out if @p lba is buffered.
     * @retval true when the sector came from the buffer.
     */
    bool overlay(Lba lba, SectorData *out) const;

    /** Drop buffered entries covering [lba, lba+nsect) — a newer
     *  write, remap, or trim supersedes them. */
    void invalidateRange(Lba lba, std::uint64_t nsect);

    /** Buffered sectors currently held. */
    std::size_t bufferedSectors() const { return smallBuf_.size(); }

    /** Force the buffer out to flash (used by tests/teardown). */
    Tick flushSmallBuffer(Tick start);

  private:
    /** True when the descriptor qualifies for pure remapping. */
    bool canRemap(const CowPair &pair) const;

    /** Chunk-exact device-internal copy of one record. */
    Tick copyRecord(const CowPair &pair, Tick start);

    /** Gather a small record into the write-back buffer. */
    Tick bufferSmallRecord(const CowPair &pair, Tick start);

    struct BufferedSector
    {
        SectorData data;
        std::uint64_t version = 0;
    };

    /** Trace lane for checkpoint-engine events (Cat::Ssd). */
    static constexpr std::uint32_t kIsceLane = 1;

    Ftl &ftl_;
    Resource &cpu_;
    const SsdConfig &cfg_;
    StatRegistry &stats_;
    std::unordered_map<Lba, BufferedSector> smallBuf_;
};

} // namespace checkin

#endif // CHECKIN_SSD_ISCE_H_
