#include "ssd/ssd.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "obs/attribution.h"
#include "obs/telemetry.h"

namespace checkin {

const char *
cmdTypeName(CmdType type)
{
    switch (type) {
      case CmdType::Read: return "read";
      case CmdType::Write: return "write";
      case CmdType::Trim: return "trim";
      case CmdType::Flush: return "flush";
      case CmdType::CowSingle: return "cowSingle";
      case CmdType::CowMulti: return "cowMulti";
      case CmdType::CheckpointRemap: return "checkpointRemap";
      case CmdType::DeleteLogs: return "deleteLogs";
    }
    return "unknown";
}

Ssd::Ssd(SimContext &ctx, const NandConfig &nand_cfg,
         const FtlConfig &ftl_cfg, const SsdConfig &ssd_cfg)
    : ctx_(ctx),
      eq_(ctx.events()),
      cfg_(ssd_cfg),
      nand_(nand_cfg),
      ftl_(nand_, ftl_cfg),
      isce_(ftl_, cpu_, cfg_, stats_)
{
    // Hostile hardware, if this run has any, comes from the context.
    nand_.setFaultPlan(ctx.faults());
    ftl_.setProgramObserver([this](Tick done) {
        inflightPrograms_.insert(done);
        // Bound the set: fully drained entries are useless.
        while (inflightPrograms_.size() > 4 * cfg_.writeBufferPages)
            inflightPrograms_.erase(inflightPrograms_.begin());
    });
    for (std::size_t c = 0; c < kCmdTypeCount; ++c) {
        sCmd_[c] = stats_.intern(
            std::string("ssd.cmd.") +
            cmdTypeName(static_cast<CmdType>(c)));
    }
    sWriteStalls_ = stats_.intern("ssd.writeStalls");
    sQueueFullStalls_ = stats_.intern("ssd.queueFullStalls");
    sCmdRetries_ = stats_.intern("ssd.cmdRetries");
    sCmdErrors_ = stats_.intern("ssd.cmdErrors");
    obs::nameLane(obs::Cat::Ssd, kFrontendLane, "frontend");
    telem_ = ctx.telemetry();
    if (telem_ != nullptr && telem_->enabled()) {
        // Device-level probes: the SSD registers for the whole
        // device stack because the FTL/NAND have no SimContext of
        // their own. Counter probes read the stat registries by
        // name: a map lookup per sampling window, not per event.
        telem_->addGauge("ftl.freeBlocks", [this] {
            return std::uint64_t(ftl_.freeBlocks());
        });
        telem_->addCounter("ftl.retiredBlocks", [this] {
            return ftl_.stats().get("ftl.retiredBlocks");
        });
        telem_->addCounter("gc.invocations", [this] {
            return ftl_.stats().get("gc.invocations");
        });
        telem_->addCounter("gc.migratedSlots", [this] {
            return ftl_.stats().get("gc.migratedSlots");
        });
        telem_->addCounter("nand.reads", [this] {
            return nand_.stats().get("nand.reads");
        });
        telem_->addCounter("nand.programs", [this] {
            return nand_.stats().get("nand.programs");
        });
        telem_->addCounter("nand.erases", [this] {
            return nand_.stats().get("nand.erases");
        });
        telem_->addCounter("ssd.mediaErrors", [this] {
            return stats_.get(sCmdErrors_);
        });
    }
}

Tick
Ssd::busTransfer(Tick earliest, std::uint64_t bytes)
{
    if (bytes == 0)
        return earliest;
    const Tick duration =
        std::max<Tick>(1, bytes * kSec / cfg_.busBytesPerSec);
    return bus_.reserve(earliest, duration);
}

Tick
Ssd::applyWriteBackpressure(Tick ack)
{
    // Drop programs that have drained by the ack time.
    while (!inflightPrograms_.empty() &&
           *inflightPrograms_.begin() <= ack) {
        inflightPrograms_.erase(inflightPrograms_.begin());
    }
    // If the buffer is over capacity, the ack waits for drains.
    while (inflightPrograms_.size() >= cfg_.writeBufferPages) {
        const Tick drain = *inflightPrograms_.begin();
        inflightPrograms_.erase(inflightPrograms_.begin());
        if (drain > ack) {
            ack = drain;
            stats_.add(sWriteStalls_);
        }
    }
    obs::counterSample(obs::Cat::Ssd, kFrontendLane, "ssd.writeBuf",
                       ack, inflightPrograms_.size());
    return ack;
}

Tick
Ssd::admitCommand(Tick now)
{
    // Retire completions that have drained by now.
    while (!inflightCommands_.empty() &&
           *inflightCommands_.begin() <= now) {
        inflightCommands_.erase(inflightCommands_.begin());
    }
    Tick admission = now;
    while (inflightCommands_.size() >= cfg_.queueDepth) {
        admission = std::max(admission, *inflightCommands_.begin());
        inflightCommands_.erase(inflightCommands_.begin());
        stats_.add(sQueueFullStalls_);
    }
    if (admission > now) {
        obs::span(obs::Cat::Ssd, kFrontendLane, "ssd.qwait", now,
                  admission);
    }
    return admission;
}

CmdResult
Ssd::processCommand(const Command &cmd)
{
    stats_.add(sCmd_[std::size_t(cmd.type)]);
    const Tick now = eq_.now();
    // Stage-boundary capture for latency attribution: the FTL and
    // NAND layers append their own sub-stages while this command is
    // active, and the finished segment list is replayed onto the op
    // timeline (directly for query commands, per group member by the
    // journal).
    const bool attr = obs::attributionOn();
    if (attr)
        obs::installedAttribution()->cmdBegin();
    // cmdTypeName returns string literals, so the pointer is safe to
    // store in the trace buffer.
    obs::instant(obs::Cat::Ssd, kFrontendLane, cmdTypeName(cmd.type),
                 now, {{"lba", cmd.lba}, {"nsect", cmd.nsect}});
    const Tick admitted = admitCommand(now);
    obs::attrCmdMark(obs::Stage::SsdQueue, admitted);
    const Tick fw_start = std::max(admitted, cpu_.freeAt());
    Tick t = cpu_.reserve(admitted, cfg_.commandOverhead);
    if (cmd.type == CmdType::Read || cmd.type == CmdType::Write) {
        // Address translation cost scales with the mapping units the
        // request spans (finer mapping -> more metadata processing).
        const std::uint64_t units =
            divCeil(cmd.nsect, ftl_.sectorsPerUnit());
        t = cpu_.reserve(t, units * cfg_.perUnitCpuTime);
    }
    // Firmware occupancy of the controller core (decode + lookup).
    obs::span(obs::Cat::Ssd, kFrontendLane, "ssd.fw", fw_start, t);
    obs::attrCmdMark(obs::Stage::Firmware, t);

    CmdResult res;
    switch (cmd.type) {
      case CmdType::Read: {
        Tick data_ready = ftl_.readSectors(
            cmd.lba, std::uint32_t(cmd.nsect), cmd.cause, t);
        // Front-end retry/backoff for uncorrectable NAND reads: the
        // failed pages were not cached, so each retry re-reads the
        // media and may succeed where the last attempt did not.
        std::uint32_t errors = ftl_.takeReadErrors();
        while (errors > 0 && res.retries < cfg_.readRetryBudget) {
            ++res.retries;
            stats_.add(sCmdRetries_);
            const Tick backoff =
                data_ready + res.retries * cfg_.retryBackoff;
            data_ready = std::max(
                data_ready,
                ftl_.readSectors(cmd.lba, std::uint32_t(cmd.nsect),
                                 cmd.cause, backoff));
            errors = ftl_.takeReadErrors();
        }
        if (errors > 0) {
            stats_.add(sCmdErrors_);
            obs::instant(obs::Cat::Ssd, kFrontendLane,
                         "ssd.mediaError", data_ready,
                         {{"lba", cmd.lba},
                          {"retries", res.retries}});
            if (telem_ != nullptr) {
                // Stamped at submission time, not the completion
                // tick: black-box entries must never postdate a
                // later dump's trigger.
                telem_->noteEvent(obs::TelemetryEvent::MediaError,
                                  eq_.now(), cmd.lba);
            }
            res.tick = data_ready;
            res.status = CmdStatus::MediaError;
            break;
        }
        // DRAM-buffered data still pays a small device-side access.
        const Tick served =
            data_ready == t ? t + cfg_.dramAccessTime : data_ready;
        if (data_ready == t)
            obs::attrCmdMark(obs::Stage::DramCache, served);
        res.tick = busTransfer(served, cmd.nsect * kSectorBytes);
        obs::attrCmdMark(obs::Stage::Bus, res.tick);
        break;
      }
      case CmdType::Write: {
        assert(cmd.payload.size() == cmd.nsect);
        // Host data supersedes any buffered checkpoint copies.
        isce_.invalidateRange(cmd.lba, cmd.nsect);
        const Tick landed =
            busTransfer(t, cmd.nsect * kSectorBytes);
        obs::attrCmdMark(obs::Stage::Bus, landed);
        const Tick ack = ftl_.writeSectors(
            cmd.lba, std::uint32_t(cmd.nsect), cmd.payload.data(),
            cmd.cause, landed, cmd.version,
            cmd.unitOob.empty() ? nullptr : cmd.unitOob.data());
        res.tick = applyWriteBackpressure(ack);
        obs::attrCmdMark(obs::Stage::Backpressure, res.tick);
        break;
      }
      case CmdType::Trim: {
        isce_.invalidateRange(cmd.lba, cmd.nsect);
        ftl_.trimSectors(cmd.lba, cmd.nsect);
        res.tick = t;
        break;
      }
      case CmdType::Flush: {
        // Writes are durable at ack (capacitor-backed buffer), so
        // flush only costs the firmware round trip.
        res.tick = t;
        break;
      }
      case CmdType::CowSingle:
      case CmdType::CowMulti: {
        const Tick decoded = busTransfer(
            t, cmd.pairs.size() * cfg_.cowDescriptorBytes);
        // Copy-only in-storage checkpointing (no remapping).
        res.tick = isce_.checkpoint(cmd.pairs, decoded, false);
        break;
      }
      case CmdType::CheckpointRemap: {
        const Tick decoded = busTransfer(
            t, cmd.pairs.size() * cfg_.cowDescriptorBytes);
        res.tick = isce_.checkpoint(cmd.pairs, decoded, true);
        break;
      }
      case CmdType::DeleteLogs: {
        ftl_.trimSectors(cmd.lba, cmd.nsect);
        isce_.onLogsDeleted(t);
        res.tick = t;
        break;
      }
    }
    // Uncorrectable reads on device-internal paths (RMW, CoW copies,
    // GC inside this command) were recovered from the SPOR-protected
    // shadows; count them, they do not fail the command.
    const std::uint32_t internal = ftl_.takeReadErrors();
    if (internal > 0)
        stats_.add("ssd.internalReadErrors", internal);
    if (attr) {
        obs::AttributionCollector *a = obs::installedAttribution();
        // Close the segment list with the command's completion tick
        // so replay clamps to it (buffered writes ack before their
        // NAND programs finish). Query-caused commands belong to
        // exactly one op; replay the stage boundaries onto it now.
        // Journal group commits replay them per member instead
        // (engine/journal.cc).
        a->cmdEnd(res.tick);
        if (cmd.cause == IoCause::Query)
            a->applyCmdToCurrent();
    }
    return res;
}

void
Ssd::submit(Command cmd, Completion cb)
{
    const CmdResult res = processCommand(cmd);
    assert(res.tick >= eq_.now());
    inflightCommands_.insert(res.tick);
    // Park the callback in a pooled slot: the scheduled event then
    // captures {this, idx} (16 bytes), so neither the event nor the
    // completion ever heap-allocates in steady state.
    std::uint32_t idx;
    if (freePending_ != kNoPending) {
        idx = freePending_;
        freePending_ = pending_[idx].next;
    } else {
        idx = std::uint32_t(pending_.size());
        pending_.emplace_back();
    }
    pending_[idx].cb = std::move(cb);
    pending_[idx].res = res;
    eq_.schedule(res.tick,
                 [this, idx] { completePending(idx); });
}

void
Ssd::completePending(std::uint32_t idx)
{
    // Move out before invoking: the callback may submit again and
    // reuse the slot.
    Completion cb = std::move(pending_[idx].cb);
    const CmdResult res = pending_[idx].res;
    pending_[idx].next = freePending_;
    freePending_ = idx;
    cb(res);
}

Tick
Ssd::submitSync(const Command &cmd)
{
    const CmdResult res = processCommand(cmd);
    inflightCommands_.insert(res.tick);
    return res.require();
}

void
Ssd::idleTick()
{
    isce_.onLogsDeleted(eq_.now());
}

Ftl::RebuildReport
Ssd::suddenPowerLoss()
{
    stats_.add("ssd.powerLosses");
    if (telem_ != nullptr)
        telem_->noteEvent(obs::TelemetryEvent::PowerCut, eq_.now());
    // Capacitor-backed flush of volatile device state (SPOR).
    isce_.flushSmallBuffer(eq_.now());
    ftl_.flushOpenPages(eq_.now());
    // Firmware RAM (map tables, queues, cache) is gone. In-flight
    // completions die with it (the caller clears the event queue, so
    // their scheduled deliveries are gone too).
    inflightPrograms_.clear();
    inflightCommands_.clear();
    pending_.clear();
    freePending_ = kNoPending;
    return ftl_.rebuildFromPowerLoss();
}

} // namespace checkin
