/**
 * @file
 * Quickstart: build a Check-In system, run a small YCSB-A workload,
 * and print the headline metrics.
 */

#include <cstdio>

#include "harness/experiment.h"
#include "harness/presets.h"

int
main()
{
    using namespace checkin;
    ExperimentConfig cfg = presets::small();
    cfg.engine.mode = CheckpointMode::CheckIn;
    cfg.workload = WorkloadSpec::a();
    cfg.workload.operationCount = 10'000;
    cfg.threads = 16;

    const RunResult r = runExperiment(cfg);
    std::printf("mode            : %s\n",
                checkpointModeName(cfg.engine.mode));
    std::printf("ops completed   : %llu\n",
                (unsigned long long)r.client.opsCompleted);
    std::printf("throughput      : %.0f ops/s\n", r.throughputOps);
    std::printf("avg latency     : %.1f us\n", r.avgLatencyUs);
    std::printf("p99.9 latency   : %.1f us\n",
                double(r.client.all.quantile(0.999)) / 1000.0);
    std::printf("checkpoints     : %llu (avg %.2f ms)\n",
                (unsigned long long)r.checkpoints,
                r.avgCheckpointMs);
    std::printf("redundant bytes : %llu\n",
                (unsigned long long)r.redundantBytes);
    std::printf("remaps          : %llu\n",
                (unsigned long long)r.remaps);
    return 0;
}
