/**
 * @file
 * Record a traced run and emit a Chrome trace_event JSON bundle.
 *
 * Runs a short YCSB workload with the observability subsystem fully
 * enabled, writes the artifact bundle (trace.json, metrics.json/csv,
 * series.csv, summary.json), and prints a per-layer breakdown of the
 * recorded events. Load trace.json in Perfetto (ui.perfetto.dev) or
 * chrome://tracing to browse the run.
 *
 * Usage: trace_explorer [out_dir] [mode] [ops]
 *   out_dir: artifact directory (default "trace-out")
 *   mode:    baseline | isc-a | isc-b | isc-c | checkin (default)
 *   ops:     operation count (default 4000)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/experiment.h"
#include "harness/presets.h"
#include "obs/trace.h"

namespace {

checkin::CheckpointMode
parseMode(const std::string &s)
{
    using checkin::CheckpointMode;
    if (s == "baseline")
        return CheckpointMode::Baseline;
    if (s == "isc-a")
        return CheckpointMode::IscA;
    if (s == "isc-b")
        return CheckpointMode::IscB;
    if (s == "isc-c")
        return CheckpointMode::IscC;
    if (s == "checkin")
        return CheckpointMode::CheckIn;
    std::fprintf(stderr, "unknown mode '%s'\n", s.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace checkin;
    ExperimentConfig cfg = presets::small();
    cfg.obs.traceEnabled = true;
    cfg.obs.artifactDir = argc > 1 ? argv[1] : "trace-out";
    cfg.engine.mode = argc > 2 ? parseMode(argv[2])
                               : CheckpointMode::CheckIn;
    cfg.workload = WorkloadSpec::a();
    cfg.workload.operationCount =
        argc > 3 ? std::uint64_t(std::atoll(argv[3])) : 4'000;
    cfg.threads = 16;
    cfg.obs.runName = std::string("trace-") +
                      checkpointModeName(cfg.engine.mode);

    // Install the tracer here so the events survive the run:
    // runExperiment reuses an enabled ambient tracer instead of
    // creating its own (which would be gone once it returns).
    obs::Tracer tracer;
    tracer.setEnabled(true);
    obs::TraceScope scope(tracer);
    const RunResult r = runExperiment(cfg);

    std::printf("=== traced %s run, %llu ops ===\n",
                checkpointModeName(cfg.engine.mode),
                (unsigned long long)r.client.opsCompleted);
    std::printf("trace events      %10zu\n", tracer.eventCount());
    for (std::size_t c = 0; c < obs::kCatCount; ++c) {
        const auto cat = static_cast<obs::Cat>(c);
        const std::uint64_t n = tracer.countIn(cat);
        if (n > 0) {
            std::printf("  %-10s      %10llu\n", obs::catName(cat),
                        (unsigned long long)n);
        }
    }
    std::printf("sim span          %10.2f ms\n",
                double(r.simSpan) / double(kMsec));
    std::printf("checkpoints       %10llu\n",
                (unsigned long long)r.checkpoints);
    if (!r.artifacts.empty()) {
        std::printf("artifacts in %s:\n", r.artifacts.dir.c_str());
        for (const std::string &f : r.artifacts.files)
            std::printf("  %s\n", f.c_str());
        std::printf("open %s/trace.json in ui.perfetto.dev\n",
                    r.artifacts.dir.c_str());
    }
    return 0;
}
