/**
 * @file
 * trace_tool — generate, inspect, and replay operation traces.
 *
 * Usage:
 *   trace_tool gen <workload> <keys> <ops> <file>   generate a trace
 *   trace_tool info <file>                          summarize a trace
 *   trace_tool replay <file> <mode> [threads]       replay vs engine
 *
 * Replays run against a small-scale Check-In stack and print the
 * same headline metrics as ycsb_run, so the same trace can be
 * compared across checkpoint configurations.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "engine/storage_engine.h"
#include "harness/experiment.h"
#include "harness/presets.h"
#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "ssd/ssd.h"
#include "workload/trace.h"

namespace {

using namespace checkin;

int
cmdGen(int argc, char **argv)
{
    if (argc < 6) {
        std::fprintf(stderr,
                     "usage: trace_tool gen <workload> <keys> <ops> "
                     "<file>\n");
        return 2;
    }
    const std::string wl = argv[2];
    WorkloadSpec spec;
    if (wl == "a")
        spec = WorkloadSpec::a();
    else if (wl == "b")
        spec = WorkloadSpec::b();
    else if (wl == "d")
        spec = WorkloadSpec::d();
    else if (wl == "e")
        spec = WorkloadSpec::e();
    else if (wl == "f")
        spec = WorkloadSpec::f();
    else if (wl == "wo")
        spec = WorkloadSpec::wo();
    else {
        std::fprintf(stderr, "unknown workload '%s'\n", wl.c_str());
        return 2;
    }
    const auto keys = std::uint64_t(std::atoll(argv[3]));
    const auto ops = std::uint64_t(std::atoll(argv[4]));
    const Trace t = Trace::generate(spec, keys, ops);
    std::ofstream os(argv[5]);
    if (!os) {
        std::fprintf(stderr, "cannot open %s\n", argv[5]);
        return 1;
    }
    os << "# checkin trace: workload=" << spec.name
       << " keys=" << keys << " ops=" << ops << "\n";
    t.save(os);
    std::printf("wrote %zu ops to %s\n", t.size(), argv[5]);
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr, "usage: trace_tool info <file>\n");
        return 2;
    }
    std::ifstream is(argv[2]);
    if (!is) {
        std::fprintf(stderr, "cannot open %s\n", argv[2]);
        return 1;
    }
    const Trace t = Trace::load(is);
    std::map<WorkloadGenerator::OpType, std::uint64_t> counts;
    std::uint64_t max_key = 0;
    for (const auto &op : t.ops()) {
        ++counts[op.type];
        max_key = std::max(max_key, op.key);
    }
    using OpType = WorkloadGenerator::OpType;
    std::printf("%zu ops, max key %llu\n", t.size(),
                (unsigned long long)max_key);
    std::printf("  reads   %llu\n",
                (unsigned long long)counts[OpType::Read]);
    std::printf("  updates %llu\n",
                (unsigned long long)counts[OpType::Update]);
    std::printf("  rmws    %llu\n",
                (unsigned long long)counts[OpType::Rmw]);
    std::printf("  scans   %llu\n",
                (unsigned long long)counts[OpType::Scan]);
    std::printf("  deletes %llu\n",
                (unsigned long long)counts[OpType::Delete]);
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    if (argc < 4) {
        std::fprintf(stderr, "usage: trace_tool replay <file> "
                             "<mode> [threads]\n");
        return 2;
    }
    std::ifstream is(argv[2]);
    if (!is) {
        std::fprintf(stderr, "cannot open %s\n", argv[2]);
        return 1;
    }
    const Trace trace = Trace::load(is);
    const std::string mode_s = argv[3];
    CheckpointMode mode = CheckpointMode::CheckIn;
    if (mode_s == "baseline")
        mode = CheckpointMode::Baseline;
    else if (mode_s == "isc-a")
        mode = CheckpointMode::IscA;
    else if (mode_s == "isc-b")
        mode = CheckpointMode::IscB;
    else if (mode_s == "isc-c")
        mode = CheckpointMode::IscC;
    else if (mode_s != "checkin") {
        std::fprintf(stderr, "unknown mode '%s'\n", mode_s.c_str());
        return 2;
    }
    const auto threads =
        std::uint32_t(argc > 4 ? std::atoi(argv[4]) : 32);

    std::uint64_t max_key = 0;
    for (const auto &op : trace.ops())
        max_key = std::max(max_key, op.key);

    ExperimentConfig base = presets::small();
    base.engine.mode = mode;
    base.engine.recordCount = max_key + 1;
    SimContext ctx;
    EventQueue &eq = ctx.events();
    FtlConfig ftl_cfg = base.ftl;
    ftl_cfg.mappingUnitBytes = base.resolvedMappingUnit();
    Ssd ssd(ctx, base.nand, ftl_cfg, base.ssd);
    const std::unique_ptr<StorageEngine> engine_ptr =
        presets::makeEngine(ctx, ssd, base.engine);
    StorageEngine &engine = *engine_ptr;
    engine.load([](std::uint64_t) { return 384u; });
    eq.schedule(ssd.quiesceTick(), [] {});
    eq.run();
    engine.start();

    const Tick start = eq.now();
    TraceReplayer replay(ctx, engine, trace, threads);
    replay.start();
    while (!replay.done()) {
        if (!eq.step()) {
            std::fprintf(stderr, "replay deadlocked\n");
            return 1;
        }
    }
    const Tick span = eq.now() - start;
    engine.verifyAllKeys();
    std::printf("replayed %llu ops as %s in %.3f ms simulated "
                "(%.0f kops/s), %zu checkpoints\n",
                (unsigned long long)replay.completed(),
                checkpointModeName(mode),
                double(span) / double(kMsec),
                double(replay.completed()) * double(kSec) /
                    double(span) / 1e3,
                engine.checkpointDurations().size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: trace_tool gen|info|replay ...\n");
        return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "gen")
        return cmdGen(argc, argv);
    if (cmd == "info")
        return cmdInfo(argc, argv);
    if (cmd == "replay")
        return cmdReplay(argc, argv);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 2;
}
