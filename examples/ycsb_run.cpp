/**
 * @file
 * Run a YCSB workload against any of the five checkpoint
 * configurations and print a full metric report.
 *
 * Usage: ycsb_run [mode] [workload] [threads] [ops]
 *   mode:     baseline | isc-a | isc-b | isc-c | checkin (default)
 *   workload: a | b | c | f | wo (default a)
 *   threads:  client thread count (default 32)
 *   ops:      operation count (default 20000)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/experiment.h"
#include "harness/presets.h"

namespace {

checkin::CheckpointMode
parseMode(const std::string &s)
{
    using checkin::CheckpointMode;
    if (s == "baseline")
        return CheckpointMode::Baseline;
    if (s == "isc-a")
        return CheckpointMode::IscA;
    if (s == "isc-b")
        return CheckpointMode::IscB;
    if (s == "isc-c")
        return CheckpointMode::IscC;
    if (s == "checkin")
        return CheckpointMode::CheckIn;
    std::fprintf(stderr, "unknown mode '%s'\n", s.c_str());
    std::exit(2);
}

checkin::WorkloadSpec
parseWorkload(const std::string &s)
{
    using checkin::WorkloadSpec;
    if (s == "a")
        return WorkloadSpec::a();
    if (s == "b")
        return WorkloadSpec::b();
    if (s == "c")
        return WorkloadSpec::c();
    if (s == "f")
        return WorkloadSpec::f();
    if (s == "wo")
        return WorkloadSpec::wo();
    std::fprintf(stderr, "unknown workload '%s'\n", s.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace checkin;
    ExperimentConfig cfg = presets::small();
    cfg.engine.mode = argc > 1 ? parseMode(argv[1])
                               : CheckpointMode::CheckIn;
    cfg.workload = argc > 2 ? parseWorkload(argv[2])
                            : WorkloadSpec::a();
    cfg.threads = argc > 3 ? std::uint32_t(std::atoi(argv[3])) : 32;
    cfg.workload.operationCount =
        argc > 4 ? std::uint64_t(std::atoll(argv[4])) : 20'000;

    const RunResult r = runExperiment(cfg);
    const auto &c = r.client;
    std::printf("=== %s / %s / %u threads / %llu ops ===\n",
                checkpointModeName(cfg.engine.mode),
                cfg.workload.name.c_str(), cfg.threads,
                (unsigned long long)c.opsCompleted);
    std::printf("throughput        %10.0f ops/s\n", r.throughputOps);
    std::printf("avg latency       %10.1f us\n", r.avgLatencyUs);
    std::printf("p99 / p99.9       %10.1f / %.1f us\n",
                double(c.all.quantile(0.99)) / 1e3,
                double(c.all.quantile(0.999)) / 1e3);
    std::printf("p99.99            %10.1f us\n",
                double(c.all.quantile(0.9999)) / 1e3);
    std::printf("checkpoints       %10llu (avg %.2f ms, max %.2f ms)\n",
                (unsigned long long)r.checkpoints, r.avgCheckpointMs,
                r.maxCheckpointMs);
    std::printf("redundant writes  %10llu slots (%.2f MiB)\n",
                (unsigned long long)r.redundantSlotWrites,
                double(r.redundantBytes) / double(kMiB));
    std::printf("remaps            %10llu\n",
                (unsigned long long)r.remaps);
    std::printf("GC invocations    %10llu (migrated %llu slots)\n",
                (unsigned long long)r.gcInvocations,
                (unsigned long long)r.gcMigratedSlots);
    std::printf("NAND r/p/e        %10llu / %llu / %llu\n",
                (unsigned long long)r.nandReads,
                (unsigned long long)r.nandPrograms,
                (unsigned long long)r.nandErases);
    std::printf("journal overhead  %10.1f %%\n",
                r.journalSpaceOverhead() * 100.0);
    std::printf("journal stalls    %10llu\n",
                (unsigned long long)r.journalStalls);
    return 0;
}
