/**
 * @file
 * Run a YCSB workload against any of the five checkpoint
 * configurations and print a full metric report.
 *
 * Usage: ycsb_run [--engine E] [--policy P] [--openloop RATE[:PROC]]
 *                 [mode] [workload] [threads] [ops]
 *   engine:   checkin | lsm storage backend (default checkin)
 *   policy:   fixed | adaptive checkpoint trigger (default fixed)
 *   openloop: drive arrivals open-loop at RATE ops/s; PROC is
 *             poisson (default) | mmpp | diurnal
 *   mode:     baseline | isc-a | isc-b | isc-c | checkin (default)
 *   workload: a | b | c | f | wo (default a)
 *   threads:  client thread count / open-loop service slots
 *             (default 32)
 *   ops:      operation count (default 20000)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/presets.h"

namespace {

checkin::CheckpointMode
parseMode(const std::string &s)
{
    using checkin::CheckpointMode;
    if (s == "baseline")
        return CheckpointMode::Baseline;
    if (s == "isc-a")
        return CheckpointMode::IscA;
    if (s == "isc-b")
        return CheckpointMode::IscB;
    if (s == "isc-c")
        return CheckpointMode::IscC;
    if (s == "checkin")
        return CheckpointMode::CheckIn;
    std::fprintf(stderr, "unknown mode '%s'\n", s.c_str());
    std::exit(2);
}

checkin::WorkloadSpec
parseWorkload(const std::string &s)
{
    using checkin::WorkloadSpec;
    if (s == "a")
        return WorkloadSpec::a();
    if (s == "b")
        return WorkloadSpec::b();
    if (s == "c")
        return WorkloadSpec::c();
    if (s == "f")
        return WorkloadSpec::f();
    if (s == "wo")
        return WorkloadSpec::wo();
    std::fprintf(stderr, "unknown workload '%s'\n", s.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace checkin;
    ExperimentConfig cfg = presets::small();

    // Split the backend flag from the positional arguments.
    std::vector<std::string> pos;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--engine") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--engine needs a value\n");
                return 2;
            }
            try {
                cfg.engine.backend =
                    presets::parseEngineBackend(argv[++i]);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "%s\n", e.what());
                return 2;
            }
        } else if (std::strcmp(argv[i], "--policy") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--policy needs a value\n");
                return 2;
            }
            const std::string p = argv[++i];
            if (p == "fixed") {
                cfg.engine.checkpointPolicy =
                    CheckpointPolicyKind::Fixed;
            } else if (p == "adaptive") {
                cfg.engine.checkpointPolicy =
                    CheckpointPolicyKind::Adaptive;
                // The controller's stall feedback reads the live
                // attribution signal.
                cfg.obs.attributionEnabled = true;
            } else {
                std::fprintf(stderr, "unknown policy '%s'\n",
                             p.c_str());
                return 2;
            }
        } else if (std::strcmp(argv[i], "--openloop") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--openloop needs a value\n");
                return 2;
            }
            std::string v = argv[++i];
            cfg.traffic.mode = LoopMode::Open;
            const std::size_t colon = v.find(':');
            if (colon != std::string::npos) {
                const std::string proc = v.substr(colon + 1);
                v.resize(colon);
                if (proc == "poisson")
                    cfg.traffic.process = ArrivalProcess::Poisson;
                else if (proc == "mmpp")
                    cfg.traffic.process = ArrivalProcess::Mmpp;
                else if (proc == "diurnal")
                    cfg.traffic.process = ArrivalProcess::Diurnal;
                else {
                    std::fprintf(stderr,
                                 "unknown arrival process '%s'\n",
                                 proc.c_str());
                    return 2;
                }
            }
            cfg.traffic.offeredOpsPerSec = std::stod(v);
        } else {
            pos.emplace_back(argv[i]);
        }
    }
    cfg.engine.mode = pos.size() > 0 ? parseMode(pos[0])
                                     : CheckpointMode::CheckIn;
    cfg.workload =
        pos.size() > 1 ? parseWorkload(pos[1]) : WorkloadSpec::a();
    cfg.threads =
        pos.size() > 2 ? std::uint32_t(std::stoul(pos[2])) : 32;
    cfg.workload.operationCount =
        pos.size() > 3 ? std::stoull(pos[3]) : 20'000;

    const RunResult r = runExperiment(cfg);
    const auto &c = r.client;
    std::printf("=== %s / %s / %s / %u threads / %llu ops ===\n",
                engineBackendName(cfg.engine.backend),
                checkpointModeName(cfg.engine.mode),
                cfg.workload.name.c_str(), cfg.threads,
                (unsigned long long)c.opsCompleted);
    std::printf("throughput        %10.0f ops/s\n", r.throughputOps);
    std::printf("avg latency       %10.1f us\n", r.avgLatencyUs);
    std::printf("p99 / p99.9       %10.1f / %.1f us\n",
                double(c.all.quantile(0.99)) / 1e3,
                double(c.all.quantile(0.999)) / 1e3);
    std::printf("p99.99            %10.1f us\n",
                double(c.all.quantile(0.9999)) / 1e3);
    std::printf("checkpoints       %10llu (avg %.2f ms, max %.2f ms)\n",
                (unsigned long long)r.checkpoints, r.avgCheckpointMs,
                r.maxCheckpointMs);
    std::printf("redundant writes  %10llu slots (%.2f MiB)\n",
                (unsigned long long)r.redundantSlotWrites,
                double(r.redundantBytes) / double(kMiB));
    std::printf("remaps            %10llu\n",
                (unsigned long long)r.remaps);
    std::printf("GC invocations    %10llu (migrated %llu slots)\n",
                (unsigned long long)r.gcInvocations,
                (unsigned long long)r.gcMigratedSlots);
    std::printf("NAND r/p/e        %10llu / %llu / %llu\n",
                (unsigned long long)r.nandReads,
                (unsigned long long)r.nandPrograms,
                (unsigned long long)r.nandErases);
    std::printf("journal overhead  %10.1f %%\n",
                r.journalSpaceOverhead() * 100.0);
    std::printf("journal stalls    %10llu\n",
                (unsigned long long)r.journalStalls);
    if (cfg.traffic.mode == LoopMode::Open) {
        std::printf("offered load      %10.0f ops/s (%s, achieved "
                    "%.0f)\n",
                    c.offeredOpsPerSec(),
                    arrivalProcessName(cfg.traffic.process),
                    c.opsPerSec());
        std::printf("queue delay p99.9 %10.1f us\n",
                    double(c.queueDelay.quantile(0.999)) / 1e3);
        std::printf("journal fill rate %10.0f KiB/s\n",
                    r.journalFillRate / double(kKiB));
    }
    return 0;
}
