/**
 * @file
 * Crash-recovery walkthrough: run a write burst, power-cut the host
 * mid-flight (device state survives, host memory does not), rebuild
 * the engine from the device, and show what was recovered.
 */

#include <cstdio>
#include <memory>

#include "engine/storage_engine.h"
#include "harness/presets.h"
#include "sim/event_queue.h"
#include "sim/sim_context.h"
#include "sim/rng.h"
#include "ssd/ssd.h"

int
main()
{
    using namespace checkin;

    SimContext ctx;
    EventQueue &eq = ctx.events();
    NandConfig nand_cfg;
    nand_cfg.blocksPerPlane = 64;
    nand_cfg.pagesPerBlock = 64;
    FtlConfig ftl_cfg; // Check-In class device: 512 B mapping unit
    Ssd ssd(ctx, nand_cfg, ftl_cfg, SsdConfig{});

    EngineConfig ecfg;
    ecfg.mode = CheckpointMode::CheckIn;
    ecfg.recordCount = 2000;
    ecfg.journalHalfBytes = 4 * kMiB;
    ecfg.checkpointJournalBytes = 2 * kMiB;
    ecfg.checkpointInterval = 0; // manual checkpoints

    std::unique_ptr<StorageEngine> engine =
        presets::makeEngine(ctx, ssd, ecfg);
    engine->load([](std::uint64_t) { return 512u; });
    eq.schedule(ssd.quiesceTick(), [] {});
    eq.run();
    std::printf("loaded %u keys at version 1\n", 2000);

    // Phase 1: committed work, then a checkpoint.
    Rng rng(7);
    std::uint64_t committed = 0;
    for (int i = 0; i < 1500; ++i) {
        engine->update(rng.nextBounded(2000),
                       std::uint32_t(128 * (1 + rng.nextBounded(4))),
                       [&](const QueryResult &) { ++committed; });
    }
    eq.run();
    engine->requestCheckpoint();
    eq.run();
    std::printf("phase 1: %llu updates committed, checkpoint done\n",
                (unsigned long long)committed);

    // Phase 2: more updates, but CRASH while they are in flight.
    for (int i = 0; i < 1000; ++i) {
        engine->update(rng.nextBounded(2000),
                       std::uint32_t(128 * (1 + rng.nextBounded(4))),
                       [&](const QueryResult &) { ++committed; });
    }
    int steps = 0;
    while (steps++ < 400 && eq.step()) {
    }
    std::printf("phase 2: power cut at t=%.3f ms with %llu total "
                "commits acknowledged\n",
                double(eq.now()) / double(kMsec),
                (unsigned long long)committed);

    // Host memory is gone: drop all pending host work + the engine.
    eq.clear();
    engine.reset();

    // Recovery: a fresh engine rebuilds from catalog + journal.
    engine = presets::makeEngine(ctx, ssd, ecfg);
    const RecoveryInfo info = engine->recover();
    std::printf("recovered: %llu keys from catalog, %llu journal "
                "logs replayed, %.3f ms simulated recovery time\n",
                (unsigned long long)info.catalogKeys,
                (unsigned long long)info.replayedLogs,
                double(info.duration) / double(kMsec));

    const std::uint64_t verified = engine->verifyAllKeys();
    std::printf("verified %llu keys after recovery — store is "
                "consistent\n",
                (unsigned long long)verified);

    // And it keeps serving.
    bool ok = false;
    engine->get(42, [&](const QueryResult &r) { ok = r.found; });
    eq.run();
    std::printf("post-recovery GET(42): %s\n",
                ok ? "found" : "missing");
    return ok ? 0 : 1;
}
