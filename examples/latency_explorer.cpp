/**
 * @file
 * Run an attributed experiment and explain where the latency went.
 *
 * Runs a short YCSB workload with per-op latency attribution enabled,
 * writes the artifact bundle (attribution.json, checkpoints.json,
 * metrics, summary), and prints:
 *  - the per-class stage breakdown of all ops,
 *  - the tail-op attribution (which stages make the slow ops slow),
 *  - the flight recorder's slowest ops with their full timelines,
 *  - the per-checkpoint phase timeline.
 *
 * Usage: latency_explorer [out_dir] [mode] [ops]
 *   out_dir: artifact directory (default "latency-out")
 *   mode:    baseline | isc-a | isc-b | isc-c | checkin (default)
 *   ops:     operation count (default 8000)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/experiment.h"
#include "harness/presets.h"
#include "obs/attribution.h"

namespace {

checkin::CheckpointMode
parseMode(const std::string &s)
{
    using checkin::CheckpointMode;
    if (s == "baseline")
        return CheckpointMode::Baseline;
    if (s == "isc-a")
        return CheckpointMode::IscA;
    if (s == "isc-b")
        return CheckpointMode::IscB;
    if (s == "isc-c")
        return CheckpointMode::IscC;
    if (s == "checkin")
        return CheckpointMode::CheckIn;
    std::fprintf(stderr, "unknown mode '%s'\n", s.c_str());
    std::exit(2);
}

void
printBreakdown(const char *title,
               const std::array<checkin::obs::ClassBreakdown,
                                checkin::obs::kOpClassCount> &classes)
{
    using namespace checkin;
    std::printf("%s\n", title);
    for (std::size_t c = 0; c < obs::kOpClassCount; ++c) {
        const obs::ClassBreakdown &cb = classes[c];
        if (cb.ops == 0)
            continue;
        const Tick total = cb.totalTicks();
        std::printf("  %-7s %8llu ops, avg %8.1f us\n",
                    obs::opClassName(obs::OpClass(c)),
                    (unsigned long long)cb.ops,
                    double(total) / double(cb.ops) / double(kUsec));
        for (std::size_t s = 0; s < obs::kStageCount; ++s) {
            if (cb.dwell[s] == 0)
                continue;
            std::printf("    %-16s %6.1f %%\n",
                        obs::stageName(obs::Stage(s)),
                        100.0 * double(cb.dwell[s]) /
                            double(total));
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace checkin;
    ExperimentConfig cfg = presets::small();
    cfg.obs.attributionEnabled = true;
    cfg.obs.artifactDir = argc > 1 ? argv[1] : "latency-out";
    cfg.engine.mode = argc > 2 ? parseMode(argv[2])
                               : CheckpointMode::CheckIn;
    cfg.workload = WorkloadSpec::a();
    cfg.workload.operationCount =
        argc > 3 ? std::uint64_t(std::atoll(argv[3])) : 8'000;
    // Low byte threshold so even the short default run crosses a few
    // checkpoints and the timeline section has something to show.
    cfg.engine.checkpointJournalBytes = 256 * kKiB;
    cfg.threads = 16;
    cfg.obs.runName = std::string("latency-") +
                      checkpointModeName(cfg.engine.mode);

    // Install the collector here so the records survive the run:
    // runExperiment reuses an enabled ambient collector instead of
    // creating its own (which would be gone once it returns).
    obs::AttributionCollector attr;
    attr.setEnabled(true);
    obs::AttributionScope scope(&attr);
    const RunResult r = runExperiment(cfg);

    std::printf("=== attributed %s run, %llu ops ===\n\n",
                checkpointModeName(cfg.engine.mode),
                (unsigned long long)r.client.opsCompleted);
    printBreakdown("all ops, per class:", r.attribution.perClass);
    std::printf("\ntail (>= p%g, %llu ops at >= %.1f us):\n",
                100.0 * r.attribution.tailQuantile,
                (unsigned long long)r.attribution.tailOps,
                double(r.attribution.tailThresholdTicks) /
                    double(kUsec));
    printBreakdown("", r.attribution.tailPerClass);

    std::printf("\nflight recorder (slowest %zu ops):\n",
                attr.flightRecorder().size());
    for (const obs::OpRecord &rec : attr.flightRecorder().slowest()) {
        std::printf("  %-7s issued %12llu  latency %8.1f us:",
                    obs::opClassName(rec.cls),
                    (unsigned long long)rec.issued,
                    double(rec.latency()) / double(kUsec));
        for (std::size_t s = 0; s < obs::kStageCount; ++s) {
            if (rec.dwell[s] == 0)
                continue;
            std::printf(" %s=%.1fus",
                        obs::stageName(obs::Stage(s)),
                        double(rec.dwell[s]) / double(kUsec));
        }
        std::printf("\n");
    }

    std::printf("\ncheckpoint timeline (%zu checkpoints):\n",
                r.checkpointTimeline.size());
    for (const obs::CheckpointStat &c : r.checkpointTimeline) {
        std::printf("  #%llu %-13s data %7.2f ms, meta %6.2f ms, "
                    "delete %6.2f ms | %llu entries "
                    "(%llu full / %llu partial / %llu merged / "
                    "%llu raw), %llu CoW cmds, %llu remapped, "
                    "%llu copied\n",
                    (unsigned long long)c.seq,
                    obs::ckptTriggerName(c.trigger),
                    double(c.dataDoneTick - c.startTick) /
                        double(kMsec),
                    double(c.metaDoneTick - c.dataDoneTick) /
                        double(kMsec),
                    double(c.endTick - c.metaDoneTick) /
                        double(kMsec),
                    (unsigned long long)c.entries,
                    (unsigned long long)c.fullRecords,
                    (unsigned long long)c.partialRecords,
                    (unsigned long long)c.mergedRecords,
                    (unsigned long long)c.rawRecords,
                    (unsigned long long)c.cowCommands,
                    (unsigned long long)c.remappedPairs,
                    (unsigned long long)c.copiedPairs);
    }

    if (!r.artifacts.empty()) {
        std::printf("\nartifacts in %s:\n", r.artifacts.dir.c_str());
        for (const std::string &f : r.artifacts.files)
            std::printf("  %s\n", f.c_str());
    }
    return 0;
}
