/**
 * @file
 * checkin_cli — run any experiment configuration from the command
 * line and print a full metric report (optionally as CSV).
 *
 * Usage:
 *   checkin_cli [--preset P] [--engine E] [--mode M] [--workload W]
 *               [--threads N] [--ops N] [--record-count N]
 *               [--interval-ms N] [--threshold-mib N] [--unit BYTES]
 *               [--pattern 1..4] [--seed N] [--device-mib N] [--csv]
 *               [--openloop RATE] [--telemetry]
 *               [--telemetry-window MS] [--blackbox-depth N]
 *               [--artifact-dir D] [--help]
 *   checkin_cli report DIR [--out FILE]
 *
 * Presets: small paper faulty cluster
 * Engines: checkin lsm
 * Modes: baseline isc-a isc-b isc-c checkin
 * Workloads: a b c d e f wo
 *
 * `--preset cluster` switches to the sharded cluster simulation
 * (src/cluster/) and additionally understands `--shards N` and
 * `--policy independent|synchronized|staggered|all`.
 *
 * `report` renders a run's artifact bundle (telemetry.json and
 * friends, written when --telemetry and --artifact-dir were given)
 * into self-contained HTML plus a terminal summary.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "harness/experiment.h"
#include "harness/presets.h"
#include "harness/report.h"
#include "harness/table.h"

namespace {

using namespace checkin;

[[noreturn]] void
usage(int code)
{
    std::printf(
        "checkin_cli — Check-In experiment runner\n\n"
        "  --preset P        small|paper|faulty|cluster (default "
        "small)\n"
        "  --engine E        checkin|lsm storage backend (default "
        "checkin)\n"
        "  --mode M          baseline|isc-a|isc-b|isc-c|checkin "
        "(default checkin)\n"
        "  --workload W      a|b|c|d|e|f|wo (default a)\n"
        "  --threads N       client threads (default 32)\n"
        "  --ops N           operations (default 20000)\n"
        "  --record-count N  keys in the store (default 4000)\n"
        "  --interval-ms N   checkpoint timer period (default 200)\n"
        "  --threshold-mib N checkpoint journal threshold (default 6)\n"
        "  --unit BYTES      override FTL mapping unit (512..4096)\n"
        "  --pattern P       record-size pattern 1..4\n"
        "  --seed N          workload seed (default 42)\n"
        "  --device-mib N    raw flash capacity (default 128)\n"
        "  --csv             one CSV line instead of the report\n"
        "\nobservability (single-node and cluster):\n"
        "  --openloop RATE   open-loop arrivals at RATE ops/s with a\n"
        "                    default 2 ms-SLO tenant (SLO accounting\n"
        "                    + anomaly detection need this)\n"
        "  --telemetry       continuous telemetry: windowed series +\n"
        "                    anomaly black box (telemetry.json,\n"
        "                    blackbox.json under --artifact-dir)\n"
        "  --telemetry-window MS  sampling window (default 1)\n"
        "  --blackbox-depth N     black-box ring depth: N samples,\n"
        "                         4N events (default 64)\n"
        "  --artifact-dir D  write the artifact bundle under D\n"
        "\ncluster preset only:\n"
        "  --shards N        engine shards behind the router "
        "(default 4)\n"
        "  --policy P        independent|synchronized|staggered|all "
        "(default independent)\n"
        "  --sync-threads N  synchronizer worker threads (0 = "
        "auto, default 1)\n"
        "\nreport subcommand:\n"
        "  checkin_cli report DIR [--out FILE]\n"
        "                    render DIR's artifacts (telemetry.json\n"
        "                    required) as self-contained HTML (default\n"
        "                    DIR/report.html) + a terminal summary\n");
    std::exit(code);
}

CheckpointMode
parseMode(const std::string &s)
{
    if (s == "baseline")
        return CheckpointMode::Baseline;
    if (s == "isc-a")
        return CheckpointMode::IscA;
    if (s == "isc-b")
        return CheckpointMode::IscB;
    if (s == "isc-c")
        return CheckpointMode::IscC;
    if (s == "checkin")
        return CheckpointMode::CheckIn;
    std::fprintf(stderr, "unknown mode '%s'\n", s.c_str());
    usage(2);
}

WorkloadSpec
parseWorkload(const std::string &s)
{
    if (s == "a")
        return WorkloadSpec::a();
    if (s == "b")
        return WorkloadSpec::b();
    if (s == "c")
        return WorkloadSpec::c();
    if (s == "d")
        return WorkloadSpec::d();
    if (s == "e")
        return WorkloadSpec::e();
    if (s == "f")
        return WorkloadSpec::f();
    if (s == "wo")
        return WorkloadSpec::wo();
    std::fprintf(stderr, "unknown workload '%s'\n", s.c_str());
    usage(2);
}

CkptCoordination
parsePolicy(const std::string &s)
{
    if (s == "independent")
        return CkptCoordination::Independent;
    if (s == "synchronized")
        return CkptCoordination::Synchronized;
    if (s == "staggered")
        return CkptCoordination::Staggered;
    std::fprintf(stderr, "unknown policy '%s'\n", s.c_str());
    usage(2);
}

/** Open-loop arrivals with one default-SLO tenant (SLO accounting
 *  and the SloStreak anomaly need a tenant with an SLO). */
void
applyOpenloop(TrafficSpec &traffic, double rate)
{
    traffic.mode = LoopMode::Open;
    traffic.offeredOpsPerSec = rate;
    if (traffic.tenants.empty())
        traffic.tenants.push_back(TenantSpec{});
}

void
applyTelemetryFlag(obs::TelemetryOptions &t, const std::string &arg,
                   const std::string &value)
{
    if (arg == "--telemetry-window")
        t.window = std::stoull(value) * kMsec;
    else if (arg == "--blackbox-depth") {
        t.blackboxSamples = std::uint32_t(std::stoul(value));
        t.blackboxEvents = 4 * t.blackboxSamples;
    }
}

int
runReport(int argc, char **argv)
{
    std::string dir;
    std::string out;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            usage(0);
        else if (arg == "--out" && i + 1 < argc)
            out = argv[++i];
        else if (dir.empty() && arg[0] != '-')
            dir = arg;
        else {
            std::fprintf(stderr, "report: unexpected '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }
    if (dir.empty()) {
        std::fprintf(stderr, "report needs an artifact directory\n");
        usage(2);
    }
    if (out.empty())
        out = dir + "/report.html";
    try {
        const std::string html = renderRunReportHtml(dir);
        std::ofstream f(out, std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "cannot write '%s'\n", out.c_str());
            return 1;
        }
        f << html;
        f.close();
        std::printf("%s", renderRunReportText(dir).c_str());
        std::printf("wrote %s (%zu bytes)\n", out.c_str(),
                    html.size());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "report failed: %s\n", e.what());
        return 1;
    }
    return 0;
}

void
printPolicyRow(Table &t, const char *policy, const ClusterResult &r)
{
    std::uint64_t ckpts = 0;
    double stall_ms = 0.0;
    for (const ShardSummary &s : r.shards) {
        ckpts += s.checkpoints;
        stall_ms += double(s.ckptStallTicks) / double(kMsec);
    }
    t.addRow({policy, Table::num(r.router.opsCompleted),
              Table::num(r.throughputOps, 0),
              Table::num(double(r.router.all.quantile(0.5)) /
                             double(kUsec),
                         1),
              Table::num(double(r.router.all.quantile(0.999)) /
                             double(kUsec),
                         1),
              Table::num(ckpts), Table::num(stall_ms, 2),
              Table::num(r.sync.windows)});
}

int
runClusterCli(int argc, char **argv)
{
    ClusterConfig cfg = presets::cluster();
    bool all_policies = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                usage(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            usage(0);
        else if (arg == "--preset")
            next(); // already dispatched on it
        else if (arg == "--shards")
            cfg.shardCount = std::uint32_t(std::stoul(next()));
        else if (arg == "--policy") {
            const std::string p = next();
            if (p == "all")
                all_policies = true;
            else
                cfg.coordination = parsePolicy(p);
        } else if (arg == "--artifact-dir")
            cfg.artifactDir = next();
        else if (arg == "--openloop")
            applyOpenloop(cfg.traffic, std::stod(next()));
        else if (arg == "--telemetry")
            cfg.shard.obs.telemetry.enabled = true;
        else if (arg == "--telemetry-window" ||
                 arg == "--blackbox-depth")
            applyTelemetryFlag(cfg.shard.obs.telemetry, arg, next());
        else if (arg == "--sync-threads")
            cfg.syncThreads = unsigned(std::stoul(next()));
        else if (arg == "--threads")
            cfg.clients = std::uint32_t(std::stoul(next()));
        else if (arg == "--ops")
            cfg.workload.operationCount = std::stoull(next());
        else if (arg == "--record-count")
            cfg.shard.engine.recordCount = std::stoull(next());
        else if (arg == "--interval-ms")
            cfg.shard.engine.checkpointInterval =
                std::stoull(next()) * kMsec;
        else if (arg == "--workload") {
            const auto ops = cfg.workload.operationCount;
            const auto seed = cfg.workload.seed;
            cfg.workload = parseWorkload(next());
            cfg.workload.operationCount = ops;
            cfg.workload.seed = seed;
        } else if (arg == "--seed") {
            cfg.seed = std::stoull(next());
            cfg.workload.seed = cfg.seed;
        } else {
            std::fprintf(stderr,
                         "flag '%s' is not supported with "
                         "--preset cluster\n",
                         arg.c_str());
            usage(2);
        }
    }

    std::printf("=== cluster / %u shards / %u clients / %llu ops "
                "===\n",
                cfg.shardCount, cfg.clients,
                (unsigned long long)cfg.workload.operationCount);

    Table policy_table({"policy", "ops", "ops/s", "p50 us",
                        "p99.9 us", "ckpts", "stall ms", "windows"});
    ClusterResult last;
    if (all_policies) {
        for (const CkptCoordination p :
             {CkptCoordination::Independent,
              CkptCoordination::Synchronized,
              CkptCoordination::Staggered}) {
            cfg.coordination = p;
            cfg.attributionEnabled = true;
            last = runCluster(cfg);
            printPolicyRow(policy_table, ckptCoordinationName(p),
                           last);
        }
        std::printf("\n%s\n", policy_table.render().c_str());
        return 0;
    }

    cfg.attributionEnabled = true;
    last = runCluster(cfg);
    printPolicyRow(policy_table,
                   ckptCoordinationName(cfg.coordination), last);
    std::printf("\n%s\n", policy_table.render().c_str());

    Table shard_table({"shard", "keys", "ops", "MiB", "svc p99.9 us",
                       "ckpts", "avg ckpt ms", "nand r/p/e",
                       "stalls"});
    for (const ShardSummary &s : last.shards) {
        shard_table.addRow(
            {Table::num(std::uint64_t(s.shard)), Table::num(s.keys),
             Table::num(s.ops),
             Table::num(double(s.bytes) / double(kMiB), 2),
             Table::num(double(s.service.quantile(0.999)) /
                            double(kUsec),
                        1),
             Table::num(s.checkpoints),
             Table::num(s.avgCheckpointMs, 2),
             Table::num(s.nandReads) + "/" +
                 Table::num(s.nandPrograms) + "/" +
                 Table::num(s.nandErases),
             Table::num(s.journalStalls)});
    }
    std::printf("%s\n", shard_table.render().c_str());
    std::printf("windows %llu, cross-node messages %llu, events "
                "%llu, verified keys %llu\n",
                (unsigned long long)last.sync.windows,
                (unsigned long long)last.sync.messages,
                (unsigned long long)last.totalEvents,
                (unsigned long long)last.verifiedKeys);
    if (last.telemetry.enabled) {
        std::printf("telemetry: %llu samples / %llu events / %llu "
                    "anomalies across %u shards\n",
                    (unsigned long long)last.telemetry.samples,
                    (unsigned long long)last.telemetry.events,
                    (unsigned long long)last.telemetry.anomalies,
                    cfg.shardCount);
    }
    if (!last.artifacts.empty())
        std::printf("artifacts: %s\n", last.artifacts.dir.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace checkin;

    if (argc > 1 && std::strcmp(argv[1], "report") == 0)
        return runReport(argc, argv);

    // Dispatch on the preset before the flag loop: the cluster
    // preset runs a different simulation with its own flag set.
    std::string preset = "small";
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--preset") == 0)
            preset = argv[i + 1];
    }
    if (preset == "cluster")
        return runClusterCli(argc, argv);

    ExperimentConfig cfg;
    if (preset == "small")
        cfg = presets::small();
    else if (preset == "paper")
        cfg = presets::paper();
    else if (preset == "faulty")
        cfg = presets::faulty();
    else {
        std::fprintf(stderr, "unknown preset '%s'\n",
                     preset.c_str());
        usage(2);
    }
    cfg.workload = WorkloadSpec::a();
    bool csv = false;
    std::uint64_t device_mib = 128;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                usage(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            usage(0);
        else if (arg == "--preset")
            next(); // already handled above
        else if (arg == "--engine") {
            try {
                cfg.engine.backend =
                    presets::parseEngineBackend(next());
            } catch (const std::exception &e) {
                std::fprintf(stderr, "%s\n", e.what());
                usage(2);
            }
        } else if (arg == "--mode")
            cfg.engine.mode = parseMode(next());
        else if (arg == "--workload") {
            const auto ops = cfg.workload.operationCount;
            const auto seed = cfg.workload.seed;
            cfg.workload = parseWorkload(next());
            cfg.workload.operationCount = ops;
            cfg.workload.seed = seed;
        } else if (arg == "--threads")
            cfg.threads = std::uint32_t(std::stoul(next()));
        else if (arg == "--ops")
            cfg.workload.operationCount = std::stoull(next());
        else if (arg == "--record-count")
            cfg.engine.recordCount = std::stoull(next());
        else if (arg == "--interval-ms")
            cfg.engine.checkpointInterval =
                std::stoull(next()) * kMsec;
        else if (arg == "--threshold-mib")
            cfg.engine.checkpointJournalBytes =
                std::stoull(next()) * kMiB;
        else if (arg == "--unit")
            cfg.mappingUnitOverride =
                std::uint32_t(std::stoul(next()));
        else if (arg == "--pattern")
            cfg.workload.valueSizes = WorkloadSpec::sizePattern(
                std::uint32_t(std::stoul(next())));
        else if (arg == "--seed")
            cfg.workload.seed = std::stoull(next());
        else if (arg == "--device-mib")
            device_mib = std::stoull(next());
        else if (arg == "--openloop")
            applyOpenloop(cfg.traffic, std::stod(next()));
        else if (arg == "--telemetry")
            cfg.obs.telemetry.enabled = true;
        else if (arg == "--telemetry-window" ||
                 arg == "--blackbox-depth")
            applyTelemetryFlag(cfg.obs.telemetry, arg, next());
        else if (arg == "--artifact-dir")
            cfg.obs.artifactDir = next();
        else if (arg == "--csv")
            csv = true;
        else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            usage(2);
        }
    }

    // Size the flash array: keep 4x2 dies, scale blocks per plane.
    const std::uint64_t per_block =
        std::uint64_t(cfg.nand.pagesPerBlock) * cfg.nand.pageBytes;
    cfg.nand.blocksPerPlane = std::uint32_t(
        device_mib * kMiB / (per_block * cfg.nand.dieCount()));
    if (cfg.nand.blocksPerPlane < 16) {
        std::fprintf(stderr, "device too small\n");
        return 2;
    }

    const RunResult r = runExperiment(cfg);
    const auto &c = r.client;
    if (csv) {
        std::printf(
            "engine,mode,workload,threads,ops,kops,avg_us,p99_us,"
            "p999_us,p9999_us,checkpoints,ckpt_avg_ms,redundant_mib,"
            "remaps,gc,erases,journal_pad\n");
        std::printf(
            "%s,%s,%s,%u,%llu,%.2f,%.1f,%.1f,%.1f,%.1f,%llu,%.2f,"
            "%.2f,%llu,%llu,%llu,%.4f\n",
            engineBackendName(cfg.engine.backend),
            checkpointModeName(cfg.engine.mode),
            cfg.workload.name.c_str(), cfg.threads,
            (unsigned long long)c.opsCompleted,
            r.throughputOps / 1e3, r.avgLatencyUs,
            double(c.all.quantile(0.99)) / 1e3,
            double(c.all.quantile(0.999)) / 1e3,
            double(c.all.quantile(0.9999)) / 1e3,
            (unsigned long long)r.checkpoints, r.avgCheckpointMs,
            double(r.redundantBytes) / double(kMiB),
            (unsigned long long)r.remaps,
            (unsigned long long)r.gcInvocations,
            (unsigned long long)r.nandErases,
            r.journalSpaceOverhead());
        return 0;
    }
    std::printf("=== %s / %s / %s / %u threads / %llu ops / %llu "
                "MiB device ===\n",
                engineBackendName(cfg.engine.backend),
                checkpointModeName(cfg.engine.mode),
                cfg.workload.name.c_str(), cfg.threads,
                (unsigned long long)c.opsCompleted,
                (unsigned long long)device_mib);
    std::printf("throughput        %10.0f ops/s\n", r.throughputOps);
    std::printf("avg latency       %10.1f us\n", r.avgLatencyUs);
    std::printf("p99 / p99.9 / p99.99  %8.1f / %.1f / %.1f us\n",
                double(c.all.quantile(0.99)) / 1e3,
                double(c.all.quantile(0.999)) / 1e3,
                double(c.all.quantile(0.9999)) / 1e3);
    std::printf("checkpoints       %10llu (avg %.2f ms, max %.2f "
                "ms)\n",
                (unsigned long long)r.checkpoints, r.avgCheckpointMs,
                r.maxCheckpointMs);
    std::printf("redundant writes  %10.2f MiB\n",
                double(r.redundantBytes) / double(kMiB));
    std::printf("remaps            %10llu\n",
                (unsigned long long)r.remaps);
    std::printf("GC / erases       %10llu / %llu\n",
                (unsigned long long)r.gcInvocations,
                (unsigned long long)r.nandErases);
    std::printf("NAND r/p          %10llu / %llu\n",
                (unsigned long long)r.nandReads,
                (unsigned long long)r.nandPrograms);
    std::printf("journal overhead  %10.1f %%\n",
                r.journalSpaceOverhead() * 100.0);
    if (r.telemetry.enabled) {
        std::printf("telemetry         %10llu samples / %llu events "
                    "/ %llu anomalies\n",
                    (unsigned long long)r.telemetry.samples,
                    (unsigned long long)r.telemetry.events,
                    (unsigned long long)r.telemetry.anomalies);
    }
    if (!r.artifacts.empty())
        std::printf("artifacts         %s\n", r.artifacts.dir.c_str());
    return 0;
}
