/**
 * @file
 * checkin_cli — run any experiment configuration from the command
 * line and print a full metric report (optionally as CSV).
 *
 * Usage:
 *   checkin_cli [--mode M] [--workload W] [--threads N] [--ops N]
 *               [--record-count N] [--interval-ms N]
 *               [--threshold-mib N] [--unit BYTES] [--pattern 1..4]
 *               [--seed N] [--device-mib N] [--csv] [--help]
 *
 * Modes: baseline isc-a isc-b isc-c checkin
 * Workloads: a b c d e f wo
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/experiment.h"
#include "harness/presets.h"

namespace {

using namespace checkin;

[[noreturn]] void
usage(int code)
{
    std::printf(
        "checkin_cli — Check-In experiment runner\n\n"
        "  --mode M          baseline|isc-a|isc-b|isc-c|checkin "
        "(default checkin)\n"
        "  --workload W      a|b|c|d|e|f|wo (default a)\n"
        "  --threads N       client threads (default 32)\n"
        "  --ops N           operations (default 20000)\n"
        "  --record-count N  keys in the store (default 4000)\n"
        "  --interval-ms N   checkpoint timer period (default 200)\n"
        "  --threshold-mib N checkpoint journal threshold (default 6)\n"
        "  --unit BYTES      override FTL mapping unit (512..4096)\n"
        "  --pattern P       record-size pattern 1..4\n"
        "  --seed N          workload seed (default 42)\n"
        "  --device-mib N    raw flash capacity (default 128)\n"
        "  --csv             one CSV line instead of the report\n");
    std::exit(code);
}

CheckpointMode
parseMode(const std::string &s)
{
    if (s == "baseline")
        return CheckpointMode::Baseline;
    if (s == "isc-a")
        return CheckpointMode::IscA;
    if (s == "isc-b")
        return CheckpointMode::IscB;
    if (s == "isc-c")
        return CheckpointMode::IscC;
    if (s == "checkin")
        return CheckpointMode::CheckIn;
    std::fprintf(stderr, "unknown mode '%s'\n", s.c_str());
    usage(2);
}

WorkloadSpec
parseWorkload(const std::string &s)
{
    if (s == "a")
        return WorkloadSpec::a();
    if (s == "b")
        return WorkloadSpec::b();
    if (s == "c")
        return WorkloadSpec::c();
    if (s == "d")
        return WorkloadSpec::d();
    if (s == "e")
        return WorkloadSpec::e();
    if (s == "f")
        return WorkloadSpec::f();
    if (s == "wo")
        return WorkloadSpec::wo();
    std::fprintf(stderr, "unknown workload '%s'\n", s.c_str());
    usage(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace checkin;
    ExperimentConfig cfg = presets::small();
    cfg.workload = WorkloadSpec::a();
    bool csv = false;
    std::uint64_t device_mib = 128;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                usage(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            usage(0);
        else if (arg == "--mode")
            cfg.engine.mode = parseMode(next());
        else if (arg == "--workload") {
            const auto ops = cfg.workload.operationCount;
            const auto seed = cfg.workload.seed;
            cfg.workload = parseWorkload(next());
            cfg.workload.operationCount = ops;
            cfg.workload.seed = seed;
        } else if (arg == "--threads")
            cfg.threads = std::uint32_t(std::stoul(next()));
        else if (arg == "--ops")
            cfg.workload.operationCount = std::stoull(next());
        else if (arg == "--record-count")
            cfg.engine.recordCount = std::stoull(next());
        else if (arg == "--interval-ms")
            cfg.engine.checkpointInterval =
                std::stoull(next()) * kMsec;
        else if (arg == "--threshold-mib")
            cfg.engine.checkpointJournalBytes =
                std::stoull(next()) * kMiB;
        else if (arg == "--unit")
            cfg.mappingUnitOverride =
                std::uint32_t(std::stoul(next()));
        else if (arg == "--pattern")
            cfg.workload.valueSizes = WorkloadSpec::sizePattern(
                std::uint32_t(std::stoul(next())));
        else if (arg == "--seed")
            cfg.workload.seed = std::stoull(next());
        else if (arg == "--device-mib")
            device_mib = std::stoull(next());
        else if (arg == "--csv")
            csv = true;
        else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            usage(2);
        }
    }

    // Size the flash array: keep 4x2 dies, scale blocks per plane.
    const std::uint64_t per_block =
        std::uint64_t(cfg.nand.pagesPerBlock) * cfg.nand.pageBytes;
    cfg.nand.blocksPerPlane = std::uint32_t(
        device_mib * kMiB / (per_block * cfg.nand.dieCount()));
    if (cfg.nand.blocksPerPlane < 16) {
        std::fprintf(stderr, "device too small\n");
        return 2;
    }

    const RunResult r = runExperiment(cfg);
    const auto &c = r.client;
    if (csv) {
        std::printf(
            "mode,workload,threads,ops,kops,avg_us,p99_us,p999_us,"
            "p9999_us,checkpoints,ckpt_avg_ms,redundant_mib,remaps,"
            "gc,erases,journal_pad\n");
        std::printf(
            "%s,%s,%u,%llu,%.2f,%.1f,%.1f,%.1f,%.1f,%llu,%.2f,%.2f,"
            "%llu,%llu,%llu,%.4f\n",
            checkpointModeName(cfg.engine.mode),
            cfg.workload.name.c_str(), cfg.threads,
            (unsigned long long)c.opsCompleted,
            r.throughputOps / 1e3, r.avgLatencyUs,
            double(c.all.quantile(0.99)) / 1e3,
            double(c.all.quantile(0.999)) / 1e3,
            double(c.all.quantile(0.9999)) / 1e3,
            (unsigned long long)r.checkpoints, r.avgCheckpointMs,
            double(r.redundantBytes) / double(kMiB),
            (unsigned long long)r.remaps,
            (unsigned long long)r.gcInvocations,
            (unsigned long long)r.nandErases,
            r.journalSpaceOverhead());
        return 0;
    }
    std::printf("=== %s / %s / %u threads / %llu ops / %llu MiB "
                "device ===\n",
                checkpointModeName(cfg.engine.mode),
                cfg.workload.name.c_str(), cfg.threads,
                (unsigned long long)c.opsCompleted,
                (unsigned long long)device_mib);
    std::printf("throughput        %10.0f ops/s\n", r.throughputOps);
    std::printf("avg latency       %10.1f us\n", r.avgLatencyUs);
    std::printf("p99 / p99.9 / p99.99  %8.1f / %.1f / %.1f us\n",
                double(c.all.quantile(0.99)) / 1e3,
                double(c.all.quantile(0.999)) / 1e3,
                double(c.all.quantile(0.9999)) / 1e3);
    std::printf("checkpoints       %10llu (avg %.2f ms, max %.2f "
                "ms)\n",
                (unsigned long long)r.checkpoints, r.avgCheckpointMs,
                r.maxCheckpointMs);
    std::printf("redundant writes  %10.2f MiB\n",
                double(r.redundantBytes) / double(kMiB));
    std::printf("remaps            %10llu\n",
                (unsigned long long)r.remaps);
    std::printf("GC / erases       %10llu / %llu\n",
                (unsigned long long)r.gcInvocations,
                (unsigned long long)r.nandErases);
    std::printf("NAND r/p          %10llu / %llu\n",
                (unsigned long long)r.nandReads,
                (unsigned long long)r.nandPrograms);
    std::printf("journal overhead  %10.1f %%\n",
                r.journalSpaceOverhead() * 100.0);
    return 0;
}
