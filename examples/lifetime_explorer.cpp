/**
 * @file
 * Flash-lifetime explorer: runs the same write-heavy workload on all
 * five configurations and reports the flash-wear picture (programs,
 * erases, GC activity, Eq (1) relative lifetime).
 */

#include <cstdio>
#include <map>

#include "harness/experiment.h"
#include "harness/presets.h"
#include "harness/table.h"

int
main(int argc, char **argv)
{
    using namespace checkin;
    const std::uint64_t ops =
        argc > 1 ? std::uint64_t(std::atoll(argv[1])) : 60'000;

    std::printf("flash lifetime explorer — YCSB-WO zipfian, %llu "
                "write queries per configuration\n\n",
                (unsigned long long)ops);

    Table t({"mode", "programs", "erases", "GC", "redundant MiB",
             "lifetime x"});
    std::map<CheckpointMode, RunResult> results;
    for (CheckpointMode mode :
         {CheckpointMode::Baseline, CheckpointMode::IscA,
          CheckpointMode::IscB, CheckpointMode::IscC,
          CheckpointMode::CheckIn}) {
        ExperimentConfig cfg = presets::small();
        cfg.engine.mode = mode;
        cfg.workload = WorkloadSpec::wo();
        cfg.workload.operationCount = ops;
        results.emplace(mode, runExperiment(cfg));
    }
    const double base_erases = std::max<double>(
        1.0, double(results.at(CheckpointMode::Baseline).nandErases));
    for (const auto &[mode, r] : results) {
        const double lifetime =
            r.nandErases > 0 ? base_erases / double(r.nandErases)
                             : 0.0;
        t.addRow({checkpointModeName(mode), Table::num(r.nandPrograms),
                  Table::num(r.nandErases),
                  Table::num(r.gcInvocations),
                  Table::num(double(r.redundantBytes) / double(kMiB),
                             2),
                  r.nandErases > 0 ? Table::num(lifetime, 2)
                                   : std::string("inf")});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nEq (1): lifetime_block = PEC_max * T_op / BEC — "
                "with a fixed workload, relative lifetime is the\n"
                "inverse ratio of block erase counts. Paper: x3.86 "
                "vs baseline, x1.81 vs ISC-C.\n");
    return 0;
}
