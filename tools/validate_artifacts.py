#!/usr/bin/env python3
"""Validate the shape of run artifacts and bench reports.

Stdlib-only schema check for the JSON files the simulator emits:

  trace.json         Chrome trace_event export (obs/trace.h)
  attribution.json   per-op latency attribution (obs/attribution.h)
  checkpoints.json   per-checkpoint phase timeline
  metrics.json       typed metrics registry export
  summary.json       RunResult export (harness/run_export.h)
  cluster.json       cluster run export (src/cluster/cluster.h)
  telemetry.json     windowed probe series (obs/telemetry.h);
                     window indices must strictly increase and every
                     counter's window deltas must sum exactly to its
                     final value
  blackbox.json      anomaly dumps; every retained sample/event tick
                     must be <= the dump's trigger tick
  BENCH_cluster.json cluster scaling report (bench/cluster_scaling)
  BENCH_engines.json storage-backend comparison (bench/engine_compare)
  BENCH_openloop.json open-loop traffic sweep (bench/openloop)
  BENCH_*.json       bench/fig* reports (bench/bench_common.h);
                     every bench name must be registered below —
                     unregistered reports fail validation

Usage:
  tools/validate_artifacts.py PATH...

Each PATH may be a single .json file or a directory (validated
recursively; files are dispatched on their name). Exits nonzero and
prints one line per problem if any file is malformed; prints a
per-file OK line otherwise. A .json file whose name is not registered
fails validation: every artifact the simulator learns to emit must
come with a schema here.
"""

import json
import sys
from pathlib import Path

STAGES = {
    "queueDelay", "hostCpu", "checkpointStall", "journalWait",
    "ssdQueue", "firmware", "ftlMap", "dramCache", "nandWait",
    "nandMedia", "gcStall", "bus", "backpressure", "other",
}
OP_CLASSES = {"read", "update", "rmw", "scan", "delete"}
TRIGGERS = {"manual", "timer", "journalBytes", "spacePressure",
            "backlog", "adaptivePace", "safety"}
POLICIES = {"independent", "synchronized", "staggered"}

errors = []


def err(path, msg):
    errors.append(f"{path}: {msg}")


def require(path, obj, key, types):
    """Check obj[key] exists and has one of the given types."""
    if not isinstance(obj, dict) or key not in obj:
        err(path, f"missing key '{key}'")
        return None
    if not isinstance(obj[key], types):
        err(path, f"key '{key}' has type {type(obj[key]).__name__}")
        return None
    return obj[key]


def check_stage_map(path, stages, ctx):
    if not isinstance(stages, dict):
        err(path, f"{ctx}: 'stages' is not an object")
        return
    for name, ticks in stages.items():
        if name not in STAGES:
            err(path, f"{ctx}: unknown stage '{name}'")
        if not isinstance(ticks, int) or ticks < 0:
            err(path, f"{ctx}: stage '{name}' dwell is not a "
                      "non-negative integer")


def check_class_map(path, classes, ctx):
    if not isinstance(classes, dict):
        err(path, f"{ctx}: 'classes' is not an object")
        return
    for cls, breakdown in classes.items():
        if cls not in OP_CLASSES:
            err(path, f"{ctx}: unknown op class '{cls}'")
            continue
        require(path, breakdown, "ops", int)
        require(path, breakdown, "totalTicks", int)
        stages = require(path, breakdown, "stages", dict)
        if stages is not None:
            check_stage_map(path, stages, f"{ctx}.{cls}")


def validate_trace(path, doc):
    events = require(path, doc, "traceEvents", list)
    if events is None:
        return
    for i, ev in enumerate(events[:1000]):
        if not isinstance(ev, dict) or "ph" not in ev:
            err(path, f"traceEvents[{i}] is not a phase event")
            return


def validate_attribution(path, doc):
    require(path, doc, "totalOps", int)
    classes = require(path, doc, "classes", dict)
    if classes is not None:
        check_class_map(path, classes, "classes")
    tail = require(path, doc, "tail", dict)
    if tail is not None:
        require(path, tail, "ops", int)
        require(path, tail, "quantile", (int, float))
        require(path, tail, "thresholdTicks", int)
        tail_classes = require(path, tail, "classes", dict)
        if tail_classes is not None:
            check_class_map(path, tail_classes, "tail.classes")
    recorder = require(path, doc, "flightRecorder", list)
    if recorder is None:
        return
    prev = None
    for i, rec in enumerate(recorder):
        ctx = f"flightRecorder[{i}]"
        cls = require(path, rec, "class", str)
        if cls is not None and cls not in OP_CLASSES:
            err(path, f"{ctx}: unknown op class '{cls}'")
        issued = require(path, rec, "issued", int)
        done = require(path, rec, "done", int)
        latency = require(path, rec, "latencyTicks", int)
        stages = require(path, rec, "stages", dict)
        if None in (issued, done, latency, stages):
            continue
        if done - issued != latency:
            err(path, f"{ctx}: latencyTicks != done - issued")
        # Conservation: stage dwells must sum to the latency.
        check_stage_map(path, stages, ctx)
        if sum(stages.values()) != latency:
            err(path, f"{ctx}: stage dwells sum to "
                      f"{sum(stages.values())}, latency {latency}")
        if prev is not None and latency > prev:
            err(path, f"{ctx}: not sorted worst-first")
        prev = latency


def validate_checkpoints(path, doc):
    count = require(path, doc, "count", int)
    ckpts = require(path, doc, "checkpoints", list)
    if ckpts is None:
        return
    if count is not None and count != len(ckpts):
        err(path, f"count {count} != len(checkpoints) {len(ckpts)}")
    for i, c in enumerate(ckpts):
        ctx = f"checkpoints[{i}]"
        trigger = require(path, c, "trigger", str)
        if trigger is not None and trigger not in TRIGGERS:
            err(path, f"{ctx}: unknown trigger '{trigger}'")
        ticks = {}
        for key in ("seq", "startTick", "endTick", "dataTicks",
                    "metaTicks", "deleteTicks", "totalTicks",
                    "entries", "rawRecords", "fullRecords",
                    "partialRecords", "mergedRecords", "tombstones",
                    "cowCommands", "remappedPairs", "remappedUnits",
                    "copiedPairs", "copiedChunks",
                    "bufferedSmallRecords"):
            ticks[key] = require(path, c, key, int)
        if None in ticks.values():
            continue
        phase_sum = (ticks["dataTicks"] + ticks["metaTicks"] +
                     ticks["deleteTicks"])
        if phase_sum != ticks["totalTicks"]:
            err(path, f"{ctx}: phase ticks sum to {phase_sum}, "
                      f"totalTicks {ticks['totalTicks']}")
        if ticks["endTick"] - ticks["startTick"] != ticks["totalTicks"]:
            err(path, f"{ctx}: endTick - startTick != totalTicks")
        record_sum = (ticks["rawRecords"] + ticks["fullRecords"] +
                      ticks["partialRecords"] + ticks["mergedRecords"])
        if ticks["entries"] != record_sum:
            err(path, f"{ctx}: entries {ticks['entries']} != "
                      f"record-class sum {record_sum}")


def validate_metrics(path, doc):
    for key in ("counters", "gauges", "histograms", "series"):
        require(path, doc, key, dict)


def validate_summary(path, doc):
    require(path, doc, "client", dict)
    require(path, doc, "raw", dict)
    ckpts = require(path, doc, "checkpoints", dict)
    if ckpts is not None:
        require(path, ckpts, "count", int)
    attribution = require(path, doc, "attribution", dict)
    if attribution is not None and attribution.get("enabled"):
        require(path, attribution, "totalOps", int)
    timeline = doc.get("checkpointTimeline")
    if timeline is not None and not isinstance(timeline, list):
        err(path, "'checkpointTimeline' is not a list")


def check_hist(path, hist, ctx):
    if not isinstance(hist, dict):
        err(path, f"{ctx}: not a histogram object")
        return
    for key in ("count", "max", "min", "p50", "p99", "p999"):
        require(path, hist, key, int)
    require(path, hist, "mean", (int, float))


def validate_cluster(path, doc):
    """cluster.json: schema plus the router/shard conservation
    invariants — per-shard op and byte counts must sum exactly to
    the router's totals (and match its per-shard routing counters)."""
    coordination = require(path, doc, "coordination", str)
    if coordination is not None and coordination not in POLICIES:
        err(path, f"unknown coordination policy '{coordination}'")
    shard_count = require(path, doc, "shardCount", int)
    require(path, doc, "lookaheadTicks", int)
    require(path, doc, "simSpanTicks", int)
    require(path, doc, "totalEvents", int)
    require(path, doc, "verifiedKeys", int)
    sync = require(path, doc, "sync", dict)
    if sync is not None:
        require(path, sync, "messages", int)
        require(path, sync, "windows", int)

    router = require(path, doc, "router", dict)
    shards = require(path, doc, "shards", list)
    if router is None or shards is None:
        return
    if shard_count is not None and len(shards) != shard_count:
        err(path, f"shardCount {shard_count} != len(shards) "
                  f"{len(shards)}")

    ops_completed = require(path, router, "opsCompleted", int)
    ops_issued = require(path, router, "opsIssued", int)
    bytes_total = require(path, router, "bytesTotal", int)
    routed_ops = require(path, router, "routedOps", list)
    routed_bytes = require(path, router, "routedBytes", list)
    check_hist(path, router.get("all"), "router.all")
    if None in (ops_completed, ops_issued, bytes_total, routed_ops,
                routed_bytes):
        return
    if ops_issued != ops_completed:
        err(path, f"router opsIssued {ops_issued} != opsCompleted "
                  f"{ops_completed}")
    if len(routed_ops) != len(shards):
        err(path, "router.routedOps length != shard count")
        return
    if len(routed_bytes) != len(shards):
        err(path, "router.routedBytes length != shard count")
        return

    sum_ops = sum_bytes = 0
    for i, shard in enumerate(shards):
        ctx = f"shards[{i}]"
        ops = require(path, shard, "ops", int)
        nbytes = require(path, shard, "bytes", int)
        require(path, shard, "checkpoints", int)
        require(path, shard, "keys", int)
        check_hist(path, shard.get("service"), f"{ctx}.service")
        if ops is None or nbytes is None:
            return
        if ops != routed_ops[i]:
            err(path, f"{ctx}: ops {ops} != router.routedOps[{i}] "
                      f"{routed_ops[i]}")
        if nbytes != routed_bytes[i]:
            err(path, f"{ctx}: bytes {nbytes} != "
                      f"router.routedBytes[{i}] {routed_bytes[i]}")
        sum_ops += ops
        sum_bytes += nbytes
    if sum_ops != ops_completed:
        err(path, f"shard ops sum {sum_ops} != router opsCompleted "
                  f"{ops_completed}")
    if sum_bytes != bytes_total:
        err(path, f"shard bytes sum {sum_bytes} != router "
                  f"bytesTotal {bytes_total}")


def validate_bench_cluster(path, doc):
    """BENCH_cluster.json: per-run scaling metrics, every policy
    name known, wall-clock derived fields present."""
    require(path, doc, "bench", str)
    runs = require(path, doc, "runs", list)
    if runs is None:
        return
    if not runs:
        err(path, "no runs")
        return
    for i, run in enumerate(runs):
        ctx = f"runs[{i}]"
        require(path, run, "label", str)
        result = require(path, run, "result", dict)
        if result is None:
            continue
        policy = require(path, result, "coordination", str)
        if policy is not None and policy not in POLICIES:
            err(path, f"{ctx}: unknown policy '{policy}'")
        require(path, result, "shardCount", int)
        require(path, result, "opsCompleted", int)
        require(path, result, "totalEvents", int)
        for key in ("eventsPerSec", "p999Us", "throughputOps",
                    "wallSeconds"):
            require(path, result, key, (int, float))


def validate_bench(path, doc):
    require(path, doc, "bench", str)
    runs = require(path, doc, "runs", list)
    if runs is None:
        return
    for i, run in enumerate(runs):
        require(path, run, "label", str)
        require(path, run, "result", dict)


def validate_bench_engines(path, doc):
    """BENCH_engines.json: the backend-comparison grid. Each run is a
    full RunResult export with latency attribution enabled; the label
    set must cover every (workload, backend) cell exactly once."""
    validate_bench(path, doc)
    runs = doc.get("runs")
    if not isinstance(runs, list):
        return
    expected = {f"{w}-{b}"
                for w in ("ycsb-a", "ycsb-b", "ycsb-c")
                for b in ("checkin", "lsm")}
    labels = [r.get("label") for r in runs if isinstance(r, dict)]
    if sorted(labels) != sorted(expected):
        err(path, f"labels {sorted(labels)} != expected grid "
                  f"{sorted(expected)}")
    for i, run in enumerate(runs):
        ctx = f"runs[{i}]"
        result = run.get("result") if isinstance(run, dict) else None
        if not isinstance(result, dict):
            continue
        require(path, result, "throughputOps", (int, float))
        require(path, result, "avgLatencyUs", (int, float))
        client = require(path, result, "client", dict)
        if client is not None:
            check_hist(path, client.get("all"), f"{ctx}.client.all")
        flash = require(path, result, "flash", dict)
        if flash is not None:
            require(path, flash, "waf", (int, float))
            require(path, flash, "programs", int)
        journal = require(path, result, "journal", dict)
        if journal is not None:
            require(path, journal, "payloadBytes", int)
            require(path, journal, "stalls", int)
        ckpts = require(path, result, "checkpoints", dict)
        if ckpts is not None:
            require(path, ckpts, "count", int)
        attribution = require(path, result, "attribution", dict)
        if attribution is not None:
            enabled = attribution.get("enabled")
            if enabled is not True:
                err(path, f"{ctx}: attribution not enabled — the "
                          "device-busy split would be empty")
            classes = require(path, attribution, "classes", dict)
            if classes is not None:
                check_class_map(path, classes,
                                f"{ctx}.attribution.classes")


def validate_bench_openloop(path, doc):
    """BENCH_openloop.json: the open-loop fixed-vs-adaptive sweep.
    Each run must satisfy the open-loop conservation invariants: the
    achieved rate can never exceed the offered rate (completions
    trail arrivals), every dispatched op records one queue delay,
    and per-tenant SLO-violation counts must sum to the client
    total."""
    validate_bench(path, doc)
    runs = doc.get("runs")
    if not isinstance(runs, list):
        return
    expected = {f"{s}-{p}"
                for s in ("poisson", "mmpp", "diurnal", "flashcrowd",
                          "multitenant")
                for p in ("fixed", "adaptive")}
    labels = [r.get("label") for r in runs if isinstance(r, dict)]
    if sorted(labels) != sorted(expected):
        err(path, f"labels {sorted(labels)} != expected grid "
                  f"{sorted(expected)}")
    for i, run in enumerate(runs):
        ctx = f"runs[{i}]"
        result = run.get("result") if isinstance(run, dict) else None
        if not isinstance(result, dict):
            continue
        throughput = require(path, result, "throughputOps",
                             (int, float))
        client = require(path, result, "client", dict)
        if client is None:
            continue
        offered_rate = require(path, client, "offeredOpsPerSec",
                               (int, float))
        ops_offered = require(path, client, "opsOffered", int)
        ops_completed = require(path, client, "opsCompleted", int)
        violations = require(path, client, "sloViolations", int)
        tenants = require(path, client, "tenants", list)
        check_hist(path, client.get("queueDelay"),
                   f"{ctx}.client.queueDelay")
        journal = require(path, result, "journal", dict)
        if journal is not None:
            require(path, journal, "fillRate", (int, float))
            require(path, journal, "stalls", int)
        if None in (throughput, offered_rate, ops_offered,
                    ops_completed, violations, tenants):
            continue
        if ops_completed > ops_offered:
            err(path, f"{ctx}: opsCompleted {ops_completed} > "
                      f"opsOffered {ops_offered}")
        if throughput > offered_rate:
            err(path, f"{ctx}: achieved rate {throughput} > offered "
                      f"rate {offered_rate}")
        queue_count = client.get("queueDelay", {}).get("count")
        if queue_count is not None and queue_count != ops_completed:
            err(path, f"{ctx}: queueDelay count {queue_count} != "
                      f"opsCompleted {ops_completed}")
        tenant_violations = 0
        tenant_ops = 0
        for j, t in enumerate(tenants):
            tctx = f"{ctx}.tenants[{j}]"
            require(path, t, "name", str)
            require(path, t, "sloLatencyTicks", int)
            v = require(path, t, "sloViolations", int)
            ops = require(path, t, "opsCompleted", int)
            if v is None or ops is None:
                continue
            if v > ops:
                err(path, f"{tctx}: sloViolations {v} > "
                          f"opsCompleted {ops}")
            tenant_violations += v
            tenant_ops += ops
        if tenants:
            if tenant_violations != violations:
                err(path, f"{ctx}: tenant sloViolations sum "
                          f"{tenant_violations} != client total "
                          f"{violations}")
            if tenant_ops != ops_completed:
                err(path, f"{ctx}: tenant opsCompleted sum "
                          f"{tenant_ops} != client total "
                          f"{ops_completed}")
        elif violations != 0:
            err(path, f"{ctx}: sloViolations {violations} with no "
                      "tenants configured")


ANOMALIES = {"sloStreak", "safetyTrip", "ckptOverrun", "mediaError",
             "powerCut"}
TELEMETRY_EVENTS = {"ckptStart", "ckptEnd", "journalStall",
                    "safetyTrip", "sloViolation", "mediaError",
                    "powerCut"}


def check_probe_series(path, name, series, ctx):
    kind = require(path, series, "kind", str)
    final = require(path, series, "final", int)
    points = require(path, series, "points", list)
    if kind is not None and kind not in ("gauge", "counter"):
        err(path, f"{ctx}: unknown probe kind '{kind}'")
    if None in (kind, final, points):
        return None
    prev = None
    total = 0
    for j, p in enumerate(points):
        if (not isinstance(p, list) or len(p) != 2 or
                not all(isinstance(x, int) for x in p)):
            err(path, f"{ctx}.points[{j}] is not [window, value]")
            return None
        if prev is not None and p[0] <= prev:
            err(path, f"{ctx}: window {p[0]} after {prev} — "
                      "windows must strictly increase")
        prev = p[0]
        total += p[1]
    # Exact reconciliation: a counter's window deltas are the whole
    # story of how it reached its final value.
    if kind == "counter" and total != final:
        err(path, f"{ctx}: window deltas sum to {total}, "
                  f"final {final}")
    return final


def validate_telemetry(path, doc):
    """telemetry.json (single-node or cluster-merged): window
    monotonicity, exact counter reconciliation, and — in the cluster
    variant — every cluster.* rollup equal to the sum of its
    shardN.* series."""
    require(path, doc, "anomalies", int)
    require(path, doc, "events", int)
    require(path, doc, "samples", int)
    baseline = require(path, doc, "baselineTick", int)
    final_tick = require(path, doc, "finalTick", int)
    window = require(path, doc, "windowTicks", int)
    probes = require(path, doc, "probes", dict)
    if None in (baseline, final_tick, window, probes):
        return
    if window <= 0:
        err(path, f"windowTicks {window} must be positive")
        return
    if final_tick < baseline:
        err(path, f"finalTick {final_tick} < baselineTick "
                  f"{baseline}")
    finals = {}
    for name, series in probes.items():
        final = check_probe_series(path, name, series,
                                   f"probes.{name}")
        if final is not None:
            finals[name] = final
    if "shardCount" not in doc:
        return
    shard_count = doc["shardCount"]
    for name, final in finals.items():
        if not name.startswith("cluster."):
            continue
        base = name[len("cluster."):]
        shard_sum = sum(finals.get(f"shard{s}.{base}", 0)
                        for s in range(shard_count))
        if shard_sum != final:
            err(path, f"probes.{name}: final {final} != shard sum "
                      f"{shard_sum}")


def check_blackbox_body(path, body, ctx):
    require(path, body, "anomalies", int)
    require(path, body, "depthEvents", int)
    require(path, body, "depthSamples", int)
    probe_names = require(path, body, "probeNames", list)
    dumps = require(path, body, "dumps", list)
    if dumps is None:
        return
    for i, d in enumerate(dumps):
        dctx = f"{ctx}dumps[{i}]"
        anomaly = require(path, d, "anomaly", str)
        if anomaly is not None and anomaly not in ANOMALIES:
            err(path, f"{dctx}: unknown anomaly '{anomaly}'")
        trigger = require(path, d, "triggerTick", int)
        require(path, d, "seq", int)
        require(path, d, "value", int)
        events = require(path, d, "events", list)
        samples = require(path, d, "samples", list)
        if None in (trigger, events, samples):
            continue
        # A dump is a *pre-trigger* window: nothing in it may
        # postdate the moment the anomaly fired.
        for j, e in enumerate(events):
            if not isinstance(e, list) or len(e) != 3:
                err(path, f"{dctx}.events[{j}] is not "
                          "[tick, event, value]")
                continue
            if not isinstance(e[0], int) or e[0] > trigger:
                err(path, f"{dctx}.events[{j}]: tick {e[0]} > "
                          f"trigger tick {trigger}")
            if e[1] not in TELEMETRY_EVENTS:
                err(path, f"{dctx}.events[{j}]: unknown event "
                          f"'{e[1]}'")
        for j, s in enumerate(samples):
            tick = require(path, s, "tick", int)
            values = require(path, s, "values", list)
            if tick is not None and tick > trigger:
                err(path, f"{dctx}.samples[{j}]: tick {tick} > "
                          f"trigger tick {trigger}")
            if (values is not None and probe_names is not None and
                    len(values) != len(probe_names)):
                err(path, f"{dctx}.samples[{j}]: {len(values)} "
                          f"values for {len(probe_names)} probes")


def validate_blackbox(path, doc):
    """blackbox.json: single-node body or cluster per-shard list."""
    if "shards" in doc:
        require(path, doc, "anomalies", int)
        shards = require(path, doc, "shards", list)
        if shards is None:
            return
        for i, s in enumerate(shards):
            require(path, s, "shard", int)
            check_blackbox_body(path, s, f"shards[{i}].")
        return
    check_blackbox_body(path, doc, "")


# Bench reports validated by the generic shape check. A BENCH_*.json
# whose name is in neither this set nor VALIDATORS fails validation:
# a new bench must register here (or with its own validator) so a
# typo'd or half-wired report can never pass silently.
GENERIC_BENCHES = {
    "ablation_checkin", "ext_workloads", "fault", "fig03_motivation",
    "fig04_breakdown", "fig08_write_amp", "fig09_tail_latency",
    "fig10_checkpoint_time", "fig11_throughput_latency",
    "fig12_interval_sensitivity", "fig13_mapping_unit", "kernel",
}


VALIDATORS = {
    "trace.json": validate_trace,
    "attribution.json": validate_attribution,
    "checkpoints.json": validate_checkpoints,
    "metrics.json": validate_metrics,
    "summary.json": validate_summary,
    "cluster.json": validate_cluster,
    "telemetry.json": validate_telemetry,
    "blackbox.json": validate_blackbox,
    "BENCH_cluster.json": validate_bench_cluster,
    "BENCH_engines.json": validate_bench_engines,
    "BENCH_openloop.json": validate_bench_openloop,
}


def dispatch(path):
    if path.name in VALIDATORS:
        validator = VALIDATORS[path.name]
    elif path.name.startswith("BENCH_") and path.suffix == ".json":
        bench = path.name[len("BENCH_"):-len(".json")]
        if bench not in GENERIC_BENCHES:
            err(path, "BENCH report with no registered schema — add "
                      "it to GENERIC_BENCHES or VALIDATORS in "
                      "tools/validate_artifacts.py")
            return True
        validator = validate_bench
    else:
        return False
    before = len(errors)
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        err(path, f"unreadable: {e}")
        return True
    validator(path, doc)
    if len(errors) == before:
        print(f"OK {path}")
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    validated = 0
    for arg in argv[1:]:
        root = Path(arg)
        if root.is_dir():
            for path in sorted(root.rglob("*.json")):
                if not dispatch(path):
                    # Unregistered artifacts fail: a new emitter must
                    # bring its schema to VALIDATORS.
                    err(path, "unregistered artifact name — add a "
                              "validator to tools/"
                              "validate_artifacts.py")
                validated += 1
        elif root.exists():
            if not dispatch(root):
                err(root, "unrecognized artifact name")
                validated += 1
        else:
            err(root, "no such file or directory")
    if errors:
        for line in errors:
            print(f"FAIL {line}", file=sys.stderr)
        return 1
    if validated == 0:
        print("FAIL: no recognized artifacts found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
